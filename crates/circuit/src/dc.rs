use std::borrow::{Borrow, BorrowMut};
use std::sync::Arc;
use std::time::Instant;

use ohmflow_linalg::{
    vecops, CscMatrix, LowRankUpdate, LuWorkspace, Precision, RankOneTermRef, RefactorStrategy,
    SparseLu, SymbolicLu,
};

use crate::LuOptions;

use crate::circuit::Circuit;
use crate::element::Element;
use crate::error::CircuitError;
use crate::ids::{ElementId, NodeId};
use crate::mna::{self, DeviceState, MnaStructure, Solution, StampMode};

/// One owned rank-1 term `(u, v)` staged for a batched Woodbury push
/// (the borrowed shape is [`RankOneTermRef`]).
type RankOneTerm = (Vec<(usize, f64)>, Vec<(usize, f64)>);
use crate::source::SourceValue;

/// A reusable, shareable cold-path artifact for one circuit *topology*: the
/// MNA unknown map, the base (all-states-initial) matrix sparsity, and its
/// factorization — symbolic ordering/pattern plus one numeric factor.
///
/// Building a template performs the entire topology-dependent cold path
/// once: unknown indexing, stamping, fill-reducing ordering, symbolic
/// analysis, numeric factorization. Every subsequent analysis of a circuit
/// with the **same structure** (same element list shape and terminals —
/// element *values* are free to differ) can then start from the template:
///
/// * [`DcPlan::solve`] primes the operating-point solve's factorization
///   cache with a numeric-only refactorization,
/// * [`DcPlan::session`] builds an incremental session without redoing
///   the structure/ordering/symbolic work,
///
/// and both fall back to the cold path transparently when the template
/// does not match the circuit. A template owns no borrow of the circuit it
/// was derived from, is `Send + Sync`, and is typically held behind an
/// [`Arc`] and shared across batch workers; each worker's numeric
/// refactorization clones only the value arrays while the symbolic plan
/// ([`DcTemplate::symbolic`]) is shared by pointer.
#[derive(Debug)]
pub struct DcTemplate {
    st: MnaStructure,
    /// Whether each element carries a branch-current unknown, element
    /// order: the structural fingerprint a candidate circuit must match.
    branch_shape: Vec<bool>,
    lu: SparseLu,
    /// The factorization options (column ordering, pivoting thresholds)
    /// the template's symbolic plan was built under — reused by every
    /// fallback fresh factorization so a template never silently mixes
    /// orderings.
    lu_opts: LuOptions,
    n_nodes: usize,
}

impl DcTemplate {
    /// Runs the cold path on `ckt` with the default factorization options
    /// (AMD + block-triangular ordering) and captures the reusable
    /// artifacts.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] if the initial-state configuration
    /// is unsolvable (floating nodes, inconsistent source loops).
    pub fn new(ckt: &Circuit) -> Result<Self, CircuitError> {
        Self::with_options(ckt, LuOptions::default())
    }

    /// [`DcTemplate::new`] with explicit factorization options — the
    /// circuit-level entry point for choosing a
    /// [`ColumnOrdering`](crate::ColumnOrdering).
    ///
    /// # Errors
    ///
    /// Same as [`DcTemplate::new`].
    pub fn with_options(ckt: &Circuit, lu_opts: LuOptions) -> Result<Self, CircuitError> {
        let st = MnaStructure::new(ckt);
        let states = mna::initial_states(ckt);
        let branch_shape = ckt
            .elements()
            .iter()
            .map(Element::has_branch_current)
            .collect();
        let m = mna::stamp_matrix(ckt, &st, &states, StampMode::Dc).to_csc();
        let lu = SparseLu::factor_with(&m, &lu_opts)?;
        Ok(DcTemplate {
            st,
            branch_shape,
            lu,
            lu_opts,
            n_nodes: ckt.node_count(),
        })
    }

    /// The factorization options this template was built under.
    pub fn lu_options(&self) -> &LuOptions {
        &self.lu_opts
    }

    /// The unknown map shared by every circuit this template matches.
    pub fn structure(&self) -> &MnaStructure {
        &self.st
    }

    /// The shared symbolic factorization (ordering + pattern + pivot plan).
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        self.lu.symbolic()
    }

    /// The template's numeric factor over [`DcTemplate::symbolic`].
    pub fn factor(&self) -> &SparseLu {
        &self.lu
    }

    /// `true` if `ckt` has the structure this template was built from:
    /// same node count and the same element-by-element branch-current
    /// shape. Values (resistances, source waveforms, device models) may
    /// differ — that is the point. A terminal rewiring that survives this
    /// check is still caught downstream: it changes the stamp pattern and
    /// the numeric refactorization rejects it ([`PatternChanged`]), which
    /// the consumers answer with a fresh factorization.
    ///
    /// [`PatternChanged`]: ohmflow_linalg::LinalgError::PatternChanged
    pub fn matches(&self, ckt: &Circuit) -> bool {
        ckt.node_count() == self.n_nodes
            && ckt.element_count() == self.branch_shape.len()
            && ckt
                .elements()
                .iter()
                .zip(&self.branch_shape)
                .all(|(e, &b)| e.has_branch_current() == b)
    }

    /// Numeric-only factorization of `ckt`'s initial-state matrix against
    /// the template's symbolic plan, with a fresh pivoting factorization as
    /// fallback. Returns the factor, the stamped matrix and whether the
    /// fast path was taken.
    fn numeric_for(
        &self,
        ckt: &Circuit,
        states: &[DeviceState],
    ) -> Result<(SparseLu, CscMatrix, bool), CircuitError> {
        let m = mna::stamp_matrix(ckt, &self.st, states, StampMode::Dc).to_csc();
        let mut lu = self.lu.clone();
        if lu.refactor(&m).is_ok() {
            Ok((lu, m, true))
        } else {
            let lu = SparseLu::factor_with(&m, &self.lu_opts)?;
            Ok((lu, m, false))
        }
    }
}

/// Everything one DC operating-point solve depends on — the shared request
/// every [`DcSolver`]/[`DcPlan`] entry point funnels into.
pub(crate) struct DcRequest<'a> {
    pub ckt: &'a Circuit,
    /// When `true` (default), `Step` sources use their pre-step value.
    pub pre_step: bool,
    /// Evaluate time-varying sources at this instant instead of `0⁻`.
    pub at_time: Option<f64>,
    /// Template whose structure and factorization seed the solve.
    pub template: Option<&'a DcTemplate>,
    /// Warm-start device states.
    pub warm: Option<&'a [DeviceState]>,
    /// Cold-path factorization options (a matching template brings its
    /// own — template options always win, so a plan can never silently
    /// factor under a different ordering than its symbolic plan).
    pub lu_opts: LuOptions,
}

/// The one DC operating-point solve body (state iteration + one step of
/// iterative refinement). Every public DC solve path in the
/// [`DcSolver`]/[`DcPlan`] facade is a thin shim over this function, which
/// is what makes their equivalence structural rather than coincidental.
pub(crate) fn run_dc(req: &DcRequest<'_>) -> Result<(DcSolution, SolveReport), CircuitError> {
    let ckt = req.ckt;
    let initial = mna::initial_states(ckt);
    // Template fast path: reuse the unknown map and prime the factor
    // cache with a numeric-only refactorization for this circuit's
    // *values* (they may differ from the template's). A failed
    // refactorization simply leaves the cache cold. Matched once: the
    // same template decides the structure, the cache seed and the
    // factorization options below.
    let matched_tpl = req.template.filter(|t| t.matches(ckt));
    // `templated` reports whether the solve actually rode the template's
    // factorization — a failed priming (singular stamp under the
    // template's pivots) or a warm-start retry below demotes it, so the
    // report never claims a fast path that did not happen.
    let mut templated = false;
    let (st, mut cache) = match matched_tpl {
        Some(tpl) => {
            let cache = tpl
                .numeric_for(ckt, &initial)
                .ok()
                .map(|(lu, m, _)| (initial.clone(), lu, m));
            templated = cache.is_some();
            (tpl.st.clone(), cache)
        }
        None => (MnaStructure::new(ckt), None),
    };
    // Warm-started states must be shape-compatible: one entry per
    // element, stateless exactly where the initial assignment is.
    let warm = req.warm.filter(|w| {
        w.len() == initial.len()
            && w.iter()
                .zip(&initial)
                .all(|(a, b)| (*a == DeviceState::Stateless) == (*b == DeviceState::Stateless))
    });
    let mut states = warm
        .map(<[DeviceState]>::to_vec)
        .unwrap_or_else(|| initial.clone());
    let warm_used = warm.is_some();
    let t = req.at_time.unwrap_or(0.0);
    // The template path factors under the template's options; the cold
    // path under the request's.
    let lu_opts = match matched_tpl {
        Some(tpl) => *tpl.lu_options(),
        None => req.lu_opts,
    };
    let solve = |states: &mut Vec<DeviceState>,
                 cache: &mut Option<(Vec<DeviceState>, SparseLu, CscMatrix)>| {
        mna::solve_pwl(
            ckt,
            &st,
            states,
            t,
            StampMode::Dc,
            None,
            req.pre_step,
            &lu_opts,
            cache,
        )
    };
    let (mut x, iterations) = match solve(&mut states, &mut cache) {
        Ok(out) => out,
        Err(CircuitError::StateIterationDiverged { .. } | CircuitError::SingularSystem { .. })
            if warm_used =>
        {
            // A bad warm start must not make a solvable system fail —
            // neither by cycling (divergence) nor by producing a
            // singular frozen stamp (e.g. a state set that floats a
            // node). Retry from the default initial states.
            states = initial;
            cache = None;
            templated = false;
            solve(&mut states, &mut cache)?
        }
        Err(e) => return Err(e),
    };
    // Iterative refinement against the converged stamp (carried in the
    // factor cache — no re-stamping). Besides tightening every DC
    // result, this is what makes the template and cold paths — which
    // factor *different but electrically equivalent* systems — agree to
    // the conditioning floor instead of the (much looser)
    // raw-factorization error. An `F64` factor keeps the historical
    // single unconditional step; an `F32Refined` factor loops — each
    // step recovers the digits the narrow factor lacks, and the f64
    // residual drives the error to the same 1e-9 gates — stopping when
    // the residual is at the noise floor or no longer shrinking.
    let mut refinements = 0usize;
    if let Some((cached_states, lu, m)) = &cache {
        if *cached_states == states {
            let b = mna::stamp_rhs(ckt, &st, &states, t, StampMode::Dc, None, req.pre_step);
            let max_steps = match lu.symbolic().precision() {
                Precision::F64 => 1,
                Precision::F32Refined => 6,
            };
            let (mut work, mut r, mut dx) = (Vec::new(), Vec::new(), Vec::new());
            refinements = mna::refine_f64(lu, m, &b, &mut x, &mut work, &mut r, &mut dx, max_steps);
        }
    }
    let report = SolveReport {
        iterations,
        factor_nnz: cache.as_ref().map_or(0, |(_, lu, _)| lu.factor_nnz()),
        block_count: cache
            .as_ref()
            .map_or(0, |(_, lu, _)| lu.symbolic().block_count()),
        templated,
        refinements,
        phases: None,
    };
    Ok((
        DcSolution {
            inner: Solution::new(x, st),
            states,
        },
        report,
    ))
}

/// Structured accounting of one DC solve — what the staged facade returns
/// instead of the historical scatter of ad-hoc stats structs.
///
/// `iterations` is the device-state (complementarity) iteration count for
/// an operating-point solve, or the number of frozen-state solves for a
/// session; `factor_nnz`/`block_count` describe the factorization that
/// produced the answer (`nnz(L+U)` and the number of BTF diagonal blocks);
/// `templated` records whether the symbolic-reuse fast path was taken; and
/// `phases` carries the per-phase wall-clock attribution when the caller
/// opted into [`DcSolver::phase_timing`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveReport {
    /// State iterations (operating-point solve) or frozen-state solves
    /// performed (session).
    pub iterations: usize,
    /// `nnz(L) + nnz(U)` of the factorization behind the answer.
    pub factor_nnz: usize,
    /// Diagonal blocks of the block-triangular form (1 when the ordering
    /// has no BTF stage).
    pub block_count: usize,
    /// Whether the solve rode a template's shared symbolic plan.
    pub templated: bool,
    /// Iterative-refinement steps applied after the linear solves: 1 for
    /// the standard `F64` post-solve polish, higher when an
    /// [`Precision::F32Refined`] factor loops the residual correction to
    /// reach f64 accuracy, 0 when no refinement ran (cold cache). A jump
    /// in this count is the observable symptom of a conditioning
    /// regression under reduced precision.
    pub refinements: usize,
    /// Per-phase wall-clock attribution (sessions with
    /// [`DcSolver::phase_timing`] enabled only).
    pub phases: Option<FrozenDcPhases>,
}

/// The staged circuit-level solver facade: **configure once, plan per
/// structure, solve/session many times.**
///
/// ```text
/// DcSolver  --plan(&ckt)-->  DcPlan  --solve(&ckt)-->   (DcSolution, SolveReport)
///    |                         \-----session(&ckt)-->   FrozenDcSession
///    \--solve/solve_at/session/stamp (plan-less one-shots)
/// ```
///
/// A [`DcPlan`] captures the topology-dependent cold path (MNA structure,
/// fill-reducing ordering, symbolic + one numeric LU) behind an
/// [`Arc<DcTemplate>`]; every solve or session derived from the plan pays
/// only numeric work. The plan-less `solve`/`session` entry points run the
/// cold path inline — use them for one-shot analyses.
///
/// This facade replaced the `DcAnalysis`-builder / `FrozenDcSession`-
/// constructor sprawl; the legacy entry points were pinned equivalent by
/// the facade test-suite and then removed.
///
/// # Example
///
/// ```
/// use ohmflow_circuit::{Circuit, DcSolver, SourceValue};
///
/// # fn main() -> Result<(), ohmflow_circuit::CircuitError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let mid = ckt.node("mid");
/// ckt.voltage_source(a, Circuit::GROUND, SourceValue::dc(2.0));
/// ckt.resistor(a, mid, 1e3);
/// ckt.resistor(mid, Circuit::GROUND, 1e3);
/// let (sol, report) = DcSolver::new().solve(&ckt)?;
/// assert!((sol.voltage(mid) - 1.0).abs() < 1e-9);
/// assert!(report.iterations >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DcSolver {
    lu: LuOptions,
    refactor: RefactorStrategy,
    phase_timing: bool,
}

impl DcSolver {
    /// A solver with the default factorization options (AMD + BTF
    /// ordering, `Auto` refactor scheduling, phase timing off).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the factorization options (ordering, pivoting
    /// thresholds). The options set here are the **single source of
    /// truth**: every plan built by this solver factors under them, and a
    /// plan's fallback fresh factorizations reuse the plan's own options,
    /// never a caller's divergent copy.
    pub fn lu_options(mut self, opts: LuOptions) -> Self {
        self.lu = opts;
        self
    }

    /// Overrides how numeric refactorizations schedule their column
    /// replay (sessions created by this solver inherit it).
    pub fn refactor_strategy(mut self, strategy: RefactorStrategy) -> Self {
        self.refactor = strategy;
        self
    }

    /// Enables per-phase wall-clock attribution on sessions created by
    /// this solver (see [`FrozenDcSession::phase_times`]). Off by default:
    /// clock reads tax every step of small systems.
    pub fn phase_timing(mut self, on: bool) -> Self {
        self.phase_timing = on;
        self
    }

    /// Runs the topology-dependent cold path on `ckt` once and captures it
    /// as a [`DcPlan`]: unknown indexing, stamping, fill-reducing
    /// ordering, symbolic analysis, one numeric factorization.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] if the initial-state configuration
    /// is unsolvable.
    pub fn plan(&self, ckt: &Circuit) -> Result<DcPlan, CircuitError> {
        Ok(self.plan_from(Arc::new(DcTemplate::with_options(ckt, self.lu)?)))
    }

    /// Wraps an already-built [`DcTemplate`] as a [`DcPlan`] without
    /// redoing any cold-path work. The plan adopts the **template's**
    /// factorization options (a symbolic plan is only reusable under the
    /// ordering that produced it).
    pub fn plan_from(&self, tpl: Arc<DcTemplate>) -> DcPlan {
        DcPlan {
            refactor: self.refactor,
            phase_timing: self.phase_timing,
            tpl,
        }
    }

    /// One-shot operating-point solve (cold path inline, no plan).
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] /
    /// [`CircuitError::StateIterationDiverged`].
    pub fn solve(&self, ckt: &Circuit) -> Result<(DcSolution, SolveReport), CircuitError> {
        run_dc(&DcRequest {
            ckt,
            pre_step: true,
            at_time: None,
            template: None,
            warm: None,
            lu_opts: self.lu,
        })
    }

    /// One-shot quasi-static solve with time-varying sources evaluated at
    /// `t` (the §6.5 slow-ramp analysis shape).
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn solve_at(
        &self,
        ckt: &Circuit,
        t: f64,
    ) -> Result<(DcSolution, SolveReport), CircuitError> {
        run_dc(&DcRequest {
            ckt,
            pre_step: false,
            at_time: Some(t),
            template: None,
            warm: None,
            lu_opts: self.lu,
        })
    }

    /// One-shot operating-point solve warm-started from `warm` (see
    /// [`DcPlan::solve_warm`] for the warm-start contract).
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn solve_warm(
        &self,
        ckt: &Circuit,
        warm: &[DeviceState],
    ) -> Result<(DcSolution, SolveReport), CircuitError> {
        run_dc(&DcRequest {
            ckt,
            pre_step: true,
            at_time: None,
            template: None,
            warm: Some(warm),
            lu_opts: self.lu,
        })
    }

    /// One-shot incremental frozen-state session (cold path inline).
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn session<'c>(
        &self,
        ckt: &'c Circuit,
    ) -> Result<FrozenDcSession<&'c Circuit>, CircuitError> {
        FrozenDcSession::construct(ckt, None, self.lu)
            .map(|s| s.tuned(self.refactor, self.phase_timing))
    }

    /// [`DcSolver::session`] seeded from an existing [`DcTemplate`]
    /// without wrapping it in an [`Arc`] first — the borrowed-template
    /// twin of [`DcPlan::session`], used where a template is shared by
    /// reference across batch workers. The session adopts the template's
    /// factorization options.
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn session_from<'c>(
        &self,
        ckt: &'c Circuit,
        tpl: &DcTemplate,
    ) -> Result<FrozenDcSession<&'c Circuit>, CircuitError> {
        FrozenDcSession::construct(ckt, Some(tpl), *tpl.lu_options())
            .map(|s| s.tuned(self.refactor, self.phase_timing))
    }

    /// [`DcSolver::session_from`] generalized over circuit ownership:
    /// `host` is anything that [`Borrow`]s a [`Circuit`] — pass a borrowed
    /// `&Circuit` for batch workers, or move an owning wrapper in to build
    /// a self-contained session (the core crate's graph-delta sessions
    /// hand their whole substrate over, then restamp source values in
    /// place through [`FrozenDcSession::set_source_value`]).
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn session_from_host<C: Borrow<Circuit>>(
        &self,
        host: C,
        tpl: &DcTemplate,
    ) -> Result<FrozenDcSession<C>, CircuitError> {
        FrozenDcSession::construct(host, Some(tpl), *tpl.lu_options())
            .map(|s| s.tuned(self.refactor, self.phase_timing))
    }

    /// Stamps `ckt`'s initial-state DC MNA matrix and factors it under
    /// this solver's options, returning both — the bench/diagnostic entry
    /// point for working with the raw linear system of a real circuit.
    /// Deliberately *not* stored inside [`DcTemplate`]: templates are
    /// long-lived, and keeping a second copy of the matrix alive measurably
    /// perturbs allocator locality for every later stamp.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] if the initial-state configuration
    /// is unsolvable.
    pub fn stamp(&self, ckt: &Circuit) -> Result<(CscMatrix, SparseLu), CircuitError> {
        let st = MnaStructure::new(ckt);
        let states = mna::initial_states(ckt);
        let m = mna::stamp_matrix(ckt, &st, &states, StampMode::Dc).to_csc();
        let lu = SparseLu::factor_with(&m, &self.lu)?;
        Ok((m, lu))
    }
}

/// The captured cold path of one circuit structure — stage two of the
/// [`DcSolver`] facade. Cheap to clone (the template is behind an `Arc`),
/// `Send + Sync`, and shareable across batch workers: each derived solve
/// or session pays only numeric work against the shared symbolic plan.
#[derive(Debug, Clone)]
pub struct DcPlan {
    refactor: RefactorStrategy,
    phase_timing: bool,
    tpl: Arc<DcTemplate>,
}

impl DcPlan {
    /// The shared cold-path artifact behind this plan.
    pub fn template(&self) -> &Arc<DcTemplate> {
        &self.tpl
    }

    /// The factorization options this plan's symbolic work was built
    /// under. Every solve and session derived from the plan — including
    /// fallback fresh factorizations — uses exactly these options.
    pub fn lu_options(&self) -> &LuOptions {
        self.tpl.lu_options()
    }

    /// `nnz(L) + nnz(U)` of the plan's factorization.
    pub fn factor_nnz(&self) -> usize {
        self.tpl.factor().factor_nnz()
    }

    /// Diagonal blocks of the plan's block-triangular form.
    pub fn block_count(&self) -> usize {
        self.tpl.symbolic().block_count()
    }

    /// Operating-point solve of `ckt` through the plan's structure and
    /// factorization (numeric-only fast path; transparent cold fallback —
    /// under the plan's own options — when the circuit does not match).
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn solve(&self, ckt: &Circuit) -> Result<(DcSolution, SolveReport), CircuitError> {
        self.solve_inner(ckt, None, None)
    }

    /// [`DcPlan::solve`] with time-varying sources evaluated at `t`.
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn solve_at(
        &self,
        ckt: &Circuit,
        t: f64,
    ) -> Result<(DcSolution, SolveReport), CircuitError> {
        self.solve_inner(ckt, Some(t), None)
    }

    /// [`DcPlan::solve`] with the device-state iteration warm-started from
    /// `warm` — typically [`DcSolution::device_states`] of a previous solve
    /// on the same structure. A shape-incompatible assignment is ignored; a
    /// warm start that fails to converge retries from the default initial
    /// states, so warm starts never change which systems are solvable.
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn solve_warm(
        &self,
        ckt: &Circuit,
        warm: &[DeviceState],
    ) -> Result<(DcSolution, SolveReport), CircuitError> {
        self.solve_inner(ckt, None, Some(warm))
    }

    fn solve_inner(
        &self,
        ckt: &Circuit,
        at_time: Option<f64>,
        warm: Option<&[DeviceState]>,
    ) -> Result<(DcSolution, SolveReport), CircuitError> {
        run_dc(&DcRequest {
            ckt,
            pre_step: at_time.is_none(),
            at_time,
            template: Some(&self.tpl),
            warm,
            lu_opts: *self.tpl.lu_options(),
        })
    }

    /// Builds an incremental frozen-state session on `ckt` from the plan:
    /// structure, ordering and symbolic analysis are reused, the session
    /// start pays only a numeric refactorization. This is the batch
    /// fan-out entry point — many sessions on same-structure circuits each
    /// derive their own numeric factor from the shared symbolic plan.
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn session<'c>(
        &self,
        ckt: &'c Circuit,
    ) -> Result<FrozenDcSession<&'c Circuit>, CircuitError> {
        FrozenDcSession::construct(ckt, Some(&self.tpl), *self.tpl.lu_options())
            .map(|s| s.tuned(self.refactor, self.phase_timing))
    }
}

/// Solves a DC operating point with *frozen* diode conduction states —
/// no complementarity iteration. Used by the quasi-static relaxation model
/// of the `ohmflow` core crate, where diode switching is governed by the
/// (op-amp-lagged) relaxed node voltages rather than the instantaneous
/// equilibrium.
///
/// `diode_on` is indexed by [`Circuit::diode_ids`] order. Time-varying
/// sources are evaluated at `time`.
///
/// The returned factorization context can be passed back in to reuse the
/// matrix factorization while the state vector is unchanged.
///
/// # Errors
///
/// [`CircuitError::SingularSystem`] if the frozen configuration is
/// unsolvable.
pub fn solve_frozen_dc(
    ckt: &Circuit,
    time: f64,
    diode_on: &[bool],
    cache: &mut Option<FrozenDcCache>,
) -> Result<DcSolution, CircuitError> {
    let st = MnaStructure::new(ckt);
    let mut states = mna::initial_states(ckt);
    let mut di = 0;
    for (idx, e) in ckt.elements().iter().enumerate() {
        if matches!(e, crate::element::Element::Diode { .. }) {
            states[idx] = if *diode_on.get(di).unwrap_or(&false) {
                DeviceState::On
            } else {
                DeviceState::Off
            };
            di += 1;
        }
    }
    let reuse = matches!(cache, Some(c) if c.states == states);
    if !reuse {
        let m = mna::stamp_matrix(ckt, &st, &states, StampMode::Dc).to_csc();
        let lu = SparseLu::factor(&m)?;
        *cache = Some(FrozenDcCache {
            states: states.clone(),
            lu,
        });
    }
    let lu = &cache
        .as_ref()
        .expect("invariant: factor cache is populated before reuse")
        .lu;
    let b = mna::stamp_rhs(ckt, &st, &states, time, StampMode::Dc, None, false);
    let x = lu.solve(&b)?;
    Ok(DcSolution {
        inner: Solution::new(x, st),
        states,
    })
}

/// Factorization cache for [`solve_frozen_dc`].
#[derive(Debug)]
pub struct FrozenDcCache {
    states: Vec<DeviceState>,
    lu: SparseLu,
}

/// Counters describing how a [`FrozenDcSession`] spent its linear-algebra
/// budget — the observable behind the incremental engine's speedup claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrozenDcStats {
    /// Frozen-state solves performed (including reused ones).
    pub solves: usize,
    /// Solves answered from the previous operating point because neither
    /// the clamp configuration nor any source value changed.
    pub reused_solutions: usize,
    /// Clamp-diode toggles absorbed as Woodbury rank-1 updates.
    pub rank1_updates: usize,
    /// Numeric-only refactorizations (pattern and pivots reused).
    pub refactorizations: usize,
    /// Full pivoting factorizations (session start + fallbacks).
    pub full_factorizations: usize,
}

/// Wall-clock nanoseconds a [`FrozenDcSession`] spent per linear-algebra
/// phase of its solve loop — the attribution that makes a transient
/// regression diagnosable: a slower `stamp` points at element iteration, a
/// slower `refactor` at the numeric replay or its scheduling, `solve` at
/// the triangular solves, `woodbury` at the rank-1 update bookkeeping.
/// Read through [`FrozenDcSession::phase_times`]; the `engine_profile`
/// bench bin prints the breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrozenDcPhases {
    /// Re-stamping the MNA matrix and the per-step right-hand sides.
    pub stamp_ns: u64,
    /// Numeric refactorizations (and fallback fresh factorizations) during
    /// rebases.
    pub refactor_ns: u64,
    /// Triangular solves against the base factorization.
    pub solve_ns: u64,
    /// Woodbury bookkeeping: sparse half-solve pushes, capacitance
    /// refreshes, corrections and the refinement residual matvecs.
    pub woodbury_ns: u64,
}

impl FrozenDcPhases {
    /// Total accounted nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.stamp_ns + self.refactor_ns + self.solve_ns + self.woodbury_ns
    }
}

/// A persistent frozen-state DC solve engine: the incremental replacement
/// for calling [`solve_frozen_dc`] in a loop.
///
/// The session owns the MNA structure, the base stamp's factorization and
/// preallocated RHS/solution buffers. Between consecutive
/// [`FrozenDcSession::solve`] calls only the diode conduction states and
/// the source evaluation time may change, and the session exploits that:
///
/// * **no flips** — the existing factorization solves the new RHS directly;
/// * **a few flips** — each toggle is a symmetric 1–2 entry conductance
///   change, absorbed as a Sherman–Morrison–Woodbury rank-1 update
///   ([`LowRankUpdate`]) against the existing factorization;
/// * **accumulated rank exceeds the budget, or the periodic hygiene
///   counter fires** — the matrix is re-stamped and *numerically*
///   refactored ([`SparseLu::refactor`]), reusing the column ordering,
///   symbolic pattern and pivot sequence; a fresh pivoting factorization
///   is the last resort (singular refactor or changed pattern).
///
/// The quasi-static relaxation engine of the `ohmflow` core crate runs its
/// entire transient on one session; see `DESIGN.md` for the lifecycle.
///
/// # Example
///
/// ```
/// use ohmflow_circuit::{Circuit, DcSolver, DiodeModel, SourceValue};
///
/// # fn main() -> Result<(), ohmflow_circuit::CircuitError> {
/// let mut ckt = Circuit::new();
/// let top = ckt.node("top");
/// let x = ckt.node("x");
/// ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
/// ckt.resistor(top, x, 1e3);
/// ckt.diode(x, Circuit::GROUND, DiodeModel::ideal());
/// let mut session = DcSolver::new().session(&ckt)?;
/// session.solve(0.0, &[false])?; // diode frozen off: x floats at 5 V
/// assert!((session.voltage(x) - 5.0).abs() < 1e-3);
/// session.solve(0.0, &[true])?; // diode frozen on: x clamps near 0 V
/// assert!(session.voltage(x).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
/// The session is generic over how it holds its circuit: `C` is any
/// [`Borrow<Circuit>`]. The historical form `FrozenDcSession<&Circuit>`
/// borrows the caller's circuit (batch workers sharing one structure);
/// `FrozenDcSession<Circuit>` — the default parameter — **owns** it, which
/// is what long-lived streaming sessions (the core crate's graph-delta
/// sessions) need: an owning session can restamp its own source values
/// through [`FrozenDcSession::set_source_value`] without fighting the
/// borrow checker over a self-referential pair.
#[derive(Debug)]
pub struct FrozenDcSession<C = Circuit> {
    ckt: C,
    st: MnaStructure,
    /// Element index of each diode, in [`Circuit::diode_ids`] order.
    diode_elems: Vec<usize>,
    /// Current logical device states (diodes track the last `solve`).
    states: Vec<DeviceState>,
    lu: SparseLu,
    /// The matrix `lu` factors (kept for iterative-refinement residuals).
    base_csc: CscMatrix,
    update: LowRankUpdate,
    /// Rank budget before the session rebases onto a refactorization.
    max_rank: usize,
    /// Solves since the last rebase; a rebase is forced every
    /// `rebase_period` solves while updates are outstanding (numerical
    /// hygiene: bounds Woodbury round-off accumulation).
    solves_since_rebase: usize,
    rebase_period: usize,
    /// Instant after which every independent source is constant
    /// ([`SourceValue::constant_after`]): past it, a step with no diode
    /// flips provably has the same operating point as the previous one and
    /// the solve is skipped outright.
    ///
    /// [`SourceValue::constant_after`]: crate::SourceValue::constant_after
    rhs_const_after: f64,
    /// Time of the last materialized solve (`None` before the first).
    last_solve_time: Option<f64>,
    /// The `diode_on` assignment of the previous call; an equal slice
    /// short-circuits the per-diode flip scan.
    last_diode_on: Vec<bool>,
    /// Set when a solve fails partway: state, factorization and cached
    /// solution may disagree, so the next call rebuilds before solving.
    poisoned: bool,
    /// Factorization options for fallback fresh factorizations (rebases
    /// whose pattern moved or whose frozen pivots died).
    lu_opts: LuOptions,
    /// How rebases schedule their numeric column replay.
    refactor: RefactorStrategy,
    /// Whether this session started from a template's shared symbolic plan
    /// (surfaced through [`FrozenDcSession::report`]).
    templated: bool,
    /// When set, a paused flip cascade does NOT auto-consolidate
    /// outstanding Woodbury terms: the owner (a delta session) runs its
    /// own consolidation budget and calls
    /// [`FrozenDcSession::consolidate`] itself. The hygiene period still
    /// bounds round-off accumulation.
    defer_consolidation: bool,
    rhs: Vec<f64>,
    work: Vec<f64>,
    x: Vec<f64>,
    resid: Vec<f64>,
    dx: Vec<f64>,
    /// Scratch for numeric refactorizations (rebases stay allocation-free).
    lu_ws: LuWorkspace,
    /// Iterative-refinement steps applied so far (surfaced through
    /// [`FrozenDcSession::report`]).
    refinements: usize,
    stats: FrozenDcStats,
    /// Phase timing is opt-in ([`FrozenDcSession::with_phase_timing`]):
    /// clock reads cost tens of nanoseconds, which is real money on small
    /// systems whose whole flip step is a few microseconds.
    phase_timing: bool,
    phases: FrozenDcPhases,
}

impl<C: Borrow<Circuit>> FrozenDcSession<C> {
    /// Default rank budget before rebase. Each accumulated rank-1 term adds
    /// one dense axpy per solve, so a handful of outstanding terms stays
    /// well below the cost of a refactorization.
    const DEFAULT_MAX_RANK: usize = 12;

    /// Default hygiene period (solves between forced rebases while
    /// updates are outstanding).
    const DEFAULT_REBASE_PERIOD: usize = 256;

    /// The one session constructor every entry point funnels into. With a
    /// matching template the circuit's base matrix is stamped with its
    /// *current* values and the template's factor is numerically
    /// refactored (shared symbolic plan, fresh per-session values) — the
    /// batch fan-out fast path; otherwise (or when the template does not
    /// [match](DcTemplate::matches)) the full cold path runs under
    /// `lu_opts`, which every rebase-path fallback factorization reuses.
    pub(crate) fn construct(
        ckt: C,
        tpl: Option<&DcTemplate>,
        lu_opts: LuOptions,
    ) -> Result<Self, CircuitError> {
        let c = ckt.borrow();
        let states = mna::initial_states(c);
        match tpl.filter(|t| t.matches(c)) {
            Some(tpl) => {
                let (lu, m, fast) = tpl.numeric_for(c, &states)?;
                let stats = FrozenDcStats {
                    refactorizations: usize::from(fast),
                    full_factorizations: usize::from(!fast),
                    ..FrozenDcStats::default()
                };
                let st = tpl.st.clone();
                let lu_opts = *tpl.lu_options();
                let mut s = Self::from_parts(ckt, st, states, m, lu, lu_opts, stats);
                s.templated = true;
                Ok(s)
            }
            None => {
                let st = MnaStructure::new(c);
                let m = mna::stamp_matrix(c, &st, &states, StampMode::Dc).to_csc();
                let lu = SparseLu::factor_with(&m, &lu_opts)?;
                let stats = FrozenDcStats {
                    full_factorizations: 1,
                    ..FrozenDcStats::default()
                };
                Ok(Self::from_parts(ckt, st, states, m, lu, lu_opts, stats))
            }
        }
    }

    /// Applies facade-level tuning (refactor scheduling + phase timing) in
    /// one hop — how [`DcSolver::session`] / [`DcPlan::session`] thread
    /// their configuration through.
    pub(crate) fn tuned(mut self, refactor: RefactorStrategy, phase_timing: bool) -> Self {
        self.refactor = refactor;
        self.phase_timing = phase_timing;
        self
    }

    fn from_parts(
        ckt: C,
        st: MnaStructure,
        states: Vec<DeviceState>,
        base_csc: CscMatrix,
        lu: SparseLu,
        lu_opts: LuOptions,
        stats: FrozenDcStats,
    ) -> Self {
        let c = ckt.borrow();
        let diode_elems = c
            .elements()
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, Element::Diode { .. }).then_some(i))
            .collect();
        let n = st.n_unknowns();
        let rhs_const_after = c
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VoltageSource { value, .. } | Element::CurrentSource { value, .. } => {
                    Some(value.constant_after())
                }
                _ => None,
            })
            .fold(f64::NEG_INFINITY, f64::max);
        FrozenDcSession {
            ckt,
            st,
            diode_elems,
            states,
            lu,
            base_csc,
            update: LowRankUpdate::new(n),
            max_rank: Self::DEFAULT_MAX_RANK,
            solves_since_rebase: 0,
            rebase_period: Self::DEFAULT_REBASE_PERIOD,
            rhs_const_after,
            last_solve_time: None,
            last_diode_on: Vec::new(),
            poisoned: false,
            lu_opts,
            refactor: RefactorStrategy::default(),
            templated: false,
            defer_consolidation: false,
            rhs: Vec::with_capacity(n),
            work: Vec::with_capacity(n),
            x: vec![0.0; n],
            resid: Vec::with_capacity(n),
            dx: Vec::with_capacity(n),
            lu_ws: LuWorkspace::new(),
            refinements: 0,
            stats,
            phase_timing: false,
            phases: FrozenDcPhases::default(),
        }
    }

    /// Reads the clock only when phase timing is enabled.
    #[inline]
    fn clock(&self) -> Option<Instant> {
        self.phase_timing.then(Instant::now)
    }

    /// Overrides the rank budget (tests and tuning; `0` forces a rebase on
    /// every flip, which degenerates to the pure-refactorization engine).
    pub fn with_max_rank(mut self, max_rank: usize) -> Self {
        self.max_rank = max_rank;
        self
    }

    /// Defers cascade-pause consolidation to the caller: outstanding
    /// rank-1 terms survive quiescent solves until the owner's own
    /// budget triggers [`FrozenDcSession::consolidate`] (or the hygiene
    /// period forces a rebase). Delta sessions use this so absorbed
    /// graph deltas are not folded away after every batch.
    pub fn with_deferred_consolidation(mut self) -> Self {
        self.defer_consolidation = true;
        self
    }

    /// Enables per-phase wall-clock attribution
    /// ([`FrozenDcSession::phase_times`]). Off by default: the clock reads
    /// would tax every step of small systems, so only profiling/bench
    /// callers (`engine_profile`, `bench_report`) opt in.
    pub fn with_phase_timing(mut self) -> Self {
        self.phase_timing = true;
        self
    }

    /// Overrides how rebases schedule their numeric column replay
    /// (`Auto` by default). [`DcSolver::refactor_strategy`] threads this
    /// through the facade.
    pub fn with_refactor_strategy(mut self, strategy: RefactorStrategy) -> Self {
        self.refactor = strategy;
        self
    }

    /// Solves the operating point at `time` with the given frozen diode
    /// conduction states (indexed by [`Circuit::diode_ids`] order; missing
    /// entries default to off). Results are read back through
    /// [`FrozenDcSession::voltage`] / [`FrozenDcSession::branch_current`] /
    /// [`FrozenDcSession::values`] without allocating.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] if the frozen configuration is
    /// unsolvable. A failed call leaves the session *poisoned*: the cached
    /// operating point is discarded (never served from the quiescent fast
    /// path) and the next call re-stamps and refactors from scratch before
    /// solving, so an error followed by a solvable configuration recovers
    /// cleanly.
    pub fn solve(&mut self, time: f64, diode_on: &[bool]) -> Result<(), CircuitError> {
        if self.poisoned {
            // A previous call failed mid-flight: states/factorization/
            // solution may be mutually inconsistent (a failed refactor
            // partially overwrites factor values). Apply the requested
            // states directly and rebuild the factorization from the
            // stamp, which regenerates every value.
            for (di, &idx) in self.diode_elems.iter().enumerate() {
                self.states[idx] = if *diode_on.get(di).unwrap_or(&false) {
                    DeviceState::On
                } else {
                    DeviceState::Off
                };
            }
            self.last_diode_on.clear();
            self.last_diode_on.extend_from_slice(diode_on);
            self.rebase()?; // still poisoned if this fails
            self.poisoned = false;
        }
        match self.solve_impl(time, diode_on) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = true;
                self.last_solve_time = None;
                Err(e)
            }
        }
    }

    fn solve_impl(&mut self, time: f64, diode_on: &[bool]) -> Result<(), CircuitError> {
        // Absorb diode flips as rank-1 conductance updates. An unchanged
        // `diode_on` slice (the common quiescent case) skips the scan.
        // Flips are collected first and pushed as ONE rank-k batch: the
        // batched push drives all k columns of Z = A⁻¹U through shared
        // multi-RHS factor traversals and refreshes the capacitance matrix
        // once, where per-flip pushes re-stream the factor per flip.
        let mut rebase_needed = false;
        let mut any_flips = false;
        let unchanged = self.last_solve_time.is_some() && self.last_diode_on == diode_on;
        let mut batch: Vec<RankOneTerm> = Vec::new();
        for (di, &idx) in self.diode_elems.iter().enumerate() {
            if unchanged {
                break;
            }
            let want = if *diode_on.get(di).unwrap_or(&false) {
                DeviceState::On
            } else {
                DeviceState::Off
            };
            if self.states[idx] == want {
                continue;
            }
            any_flips = true;
            let Element::Diode {
                anode,
                cathode,
                model,
            } = &self.ckt.borrow().elements()[idx]
            else {
                unreachable!("diode_elems holds diode indices");
            };
            let (g_on, g_off) = (1.0 / model.r_on, 1.0 / model.r_off);
            let dg = match want {
                DeviceState::On => g_on - g_off,
                _ => g_off - g_on,
            };
            self.states[idx] = want;
            let mut d: Vec<(usize, f64)> = Vec::with_capacity(2);
            if let Some(u) = anode.unknown() {
                d.push((u, 1.0));
            }
            if let Some(u) = cathode.unknown() {
                d.push((u, -1.0));
            }
            if d.is_empty() {
                continue; // both terminals grounded: no matrix change
            }
            let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();
            batch.push((u, d));
        }
        if self.update.rank() + batch.len() > self.max_rank {
            // The cascade is too wide for the rank budget: pushing it
            // would cost k reach solves plus an O(k²) capacitance refresh
            // only to be folded away by the over-budget rebase right
            // after. States already hold the target assignment — restamp
            // and refactor once instead (exactly a cold iteration's
            // cost). Virgin-state convergence, where the first iteration
            // flips a large fraction of all diodes, lands here.
            rebase_needed = true;
        } else if !batch.is_empty() {
            let terms: Vec<RankOneTermRef<'_>> = batch
                .iter()
                .map(|(u, v)| (u.as_slice(), v.as_slice()))
                .collect();
            let t0 = self.clock();
            let pushed = self.update.push_batch(&self.lu, &terms);
            if let Some(t0) = t0 {
                self.phases.woodbury_ns += t0.elapsed().as_nanos() as u64;
            }
            if pushed.is_err() {
                // Updated matrix not solvable through this base (or the
                // capacitance matrix went singular): the batch rolled
                // itself back, states already hold the target assignment —
                // fall back to a rebase, which restamps from states.
                rebase_needed = true;
            } else {
                self.stats.rank1_updates += terms.len();
            }
        }

        if !unchanged {
            self.last_diode_on.clear();
            self.last_diode_on.extend_from_slice(diode_on);
        }
        if !any_flips {
            // The switching cascade paused: consolidate outstanding
            // rank-1 terms into the factorization once (refactorization
            // cost), so quiescent stretches run the plain cached-LU path.
            // Sessions under an external consolidation budget skip this
            // and fold terms when their owner says so.
            if !self.update.is_empty() && !self.defer_consolidation {
                self.rebase()?;
            }
            // Nothing changed at all? Past `rhs_const_after` every source
            // is constant, so with an unchanged clamp configuration the
            // operating point is the previous one verbatim — skip the
            // solve. This is the quiescent-tail fast path a per-call
            // rebuild can never take.
            let settled = time >= self.rhs_const_after
                && self
                    .last_solve_time
                    .is_some_and(|tp| tp >= self.rhs_const_after);
            if settled {
                self.last_solve_time = Some(time);
                self.stats.solves += 1;
                self.stats.reused_solutions += 1;
                return Ok(());
            }
        }

        // The hygiene counter only accrues while rank-1 terms are
        // outstanding; a long quiescent stretch must not trigger a rebase
        // on the first flip that follows it.
        if self.update.is_empty() {
            self.solves_since_rebase = 0;
        } else {
            self.solves_since_rebase += 1;
        }
        if rebase_needed
            || self.update.rank() > self.max_rank
            || (!self.update.is_empty() && self.solves_since_rebase >= self.rebase_period)
        {
            self.rebase()?;
        }

        let t0 = self.clock();
        mna::stamp_rhs_into(
            &mut self.rhs,
            self.ckt.borrow(),
            &self.st,
            &self.states,
            time,
            StampMode::Dc,
            None,
            false,
        );
        if let Some(t0) = t0 {
            self.phases.stamp_ns += t0.elapsed().as_nanos() as u64;
        }
        if self.solve_linear().is_err() {
            // Numerical hygiene fallback: rebase and retry once.
            self.rebase()?;
            self.solve_linear()?;
        }
        self.last_solve_time = Some(time);
        self.stats.solves += 1;
        Ok(())
    }

    /// Solves the stamped system through the Woodbury update, plus one step
    /// of iterative refinement while rank-1 terms are outstanding: a large
    /// conductance swing (ideal diodes toggle by ~10 orders of magnitude)
    /// costs the bare Woodbury formula several digits to cancellation, and
    /// the refinement buys them back for one extra solve + matvec.
    ///
    /// Base triangular solves and Woodbury corrections run (and are timed)
    /// separately so [`FrozenDcPhases`] can attribute them.
    fn solve_linear(&mut self) -> Result<(), CircuitError> {
        let t0 = self.clock();
        self.lu.solve_into(&self.rhs, &mut self.work, &mut self.x)?;
        if let Some(t0) = t0 {
            self.phases.solve_ns += t0.elapsed().as_nanos() as u64;
        }
        if self.update.is_empty() {
            // No Woodbury terms outstanding: an `F64` factor's bare solve
            // is already at the conditioning floor, but an `F32Refined`
            // factor needs the f64 residual loop to buy its digits back.
            if self.lu.symbolic().precision() == Precision::F32Refined {
                self.refine_base()?;
            }
            return Ok(());
        }
        let t0 = self.clock();
        self.update.correct(&self.lu, &mut self.x)?;
        self.base_csc.mul_vec_into(&self.x, &mut self.resid);
        self.update.accumulate_matvec(&self.x, &mut self.resid);
        for (r, b) in self.resid.iter_mut().zip(&self.rhs) {
            *r = b - *r;
        }
        if let Some(t0) = t0 {
            self.phases.woodbury_ns += t0.elapsed().as_nanos() as u64;
        }
        let t0 = self.clock();
        self.lu
            .solve_into(&self.resid, &mut self.work, &mut self.dx)?;
        if let Some(t0) = t0 {
            self.phases.solve_ns += t0.elapsed().as_nanos() as u64;
        }
        let t0 = self.clock();
        self.update.correct(&self.lu, &mut self.dx)?;
        for (x, d) in self.x.iter_mut().zip(&self.dx) {
            *x += d;
        }
        self.refinements += 1;
        if let Some(t0) = t0 {
            self.phases.woodbury_ns += t0.elapsed().as_nanos() as u64;
        }
        if self.lu.symbolic().precision() == Precision::F32Refined {
            // The single Woodbury-corrected step above assumed an
            // f64-accurate base solve; under a narrow factor, keep
            // iterating the same corrected residual cycle.
            let t0 = self.clock();
            let bnorm = vecops::norm_inf(&self.rhs);
            let mut prev = f64::INFINITY;
            for _ in 0..4 {
                self.base_csc.mul_vec_into(&self.x, &mut self.resid);
                self.update.accumulate_matvec(&self.x, &mut self.resid);
                for (r, b) in self.resid.iter_mut().zip(&self.rhs) {
                    *r = b - *r;
                }
                let rnorm = vecops::norm_inf(&self.resid);
                if rnorm <= f64::EPSILON * (1.0 + bnorm) || rnorm >= 0.5 * prev {
                    break;
                }
                prev = rnorm;
                self.lu
                    .solve_into(&self.resid, &mut self.work, &mut self.dx)?;
                self.update.correct(&self.lu, &mut self.dx)?;
                for (x, d) in self.x.iter_mut().zip(&self.dx) {
                    *x += d;
                }
                self.refinements += 1;
            }
            if let Some(t0) = t0 {
                self.phases.solve_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        Ok(())
    }

    /// The `F32Refined` residual-correction loop against the base factor
    /// (no Woodbury terms): f64 residuals against the exact stamped
    /// matrix recover full double accuracy from the narrow factor, with
    /// the same stopping rule as the operating-point path — noise floor
    /// or stagnation.
    fn refine_base(&mut self) -> Result<(), CircuitError> {
        let t0 = self.clock();
        let bnorm = vecops::norm_inf(&self.rhs);
        let mut prev = f64::INFINITY;
        for _ in 0..5 {
            self.base_csc.mul_vec_into(&self.x, &mut self.resid);
            for (r, b) in self.resid.iter_mut().zip(&self.rhs) {
                *r = b - *r;
            }
            let rnorm = vecops::norm_inf(&self.resid);
            if rnorm <= f64::EPSILON * (1.0 + bnorm) || rnorm >= 0.5 * prev {
                break;
            }
            prev = rnorm;
            self.lu
                .solve_into(&self.resid, &mut self.work, &mut self.dx)?;
            vecops::axpy(1.0, &self.dx, &mut self.x);
            self.refinements += 1;
        }
        if let Some(t0) = t0 {
            self.phases.solve_ns += t0.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    /// Re-stamps the matrix for the current states and replaces the base
    /// factorization: numeric-only refactorization when the pattern still
    /// fits, fresh pivoting factorization otherwise.
    fn rebase(&mut self) -> Result<(), CircuitError> {
        let t0 = self.clock();
        let m =
            mna::stamp_matrix(self.ckt.borrow(), &self.st, &self.states, StampMode::Dc).to_csc();
        if let Some(t0) = t0 {
            self.phases.stamp_ns += t0.elapsed().as_nanos() as u64;
        }
        // The session's configured replay strategy (`Auto` by default: on
        // systems past the parallel threshold it schedules the elimination
        // levels across rayon workers).
        let t0 = self.clock();
        if self
            .lu
            .refactor_with_strategy(&m, &mut self.lu_ws, self.refactor)
            .is_ok()
        {
            self.stats.refactorizations += 1;
        } else {
            self.lu = SparseLu::factor_with(&m, &self.lu_opts)?;
            self.stats.full_factorizations += 1;
        }
        if let Some(t0) = t0 {
            self.phases.refactor_ns += t0.elapsed().as_nanos() as u64;
        }
        self.base_csc = m;
        self.update.clear();
        self.solves_since_rebase = 0;
        Ok(())
    }

    /// The circuit host this session was built over (the `&Circuit` of a
    /// borrowed session, or the owning wrapper of an owned one).
    pub fn host(&self) -> &C {
        &self.ckt
    }

    /// Rank of the outstanding Woodbury update — how many rank-1 terms
    /// have been absorbed since the last rebase. Consolidation policies
    /// (the core crate's delta sessions) read this to decide when the
    /// per-solve correction overhead has outgrown a refactorization.
    pub fn outstanding_rank(&self) -> usize {
        self.update.rank()
    }

    /// Re-stamps and refactors the base for the current device states,
    /// folding every outstanding Woodbury term into the factorization
    /// (numeric-only refactorization when the pattern still fits, fresh
    /// pivoting factorization otherwise). The budget-driven consolidation
    /// entry point for streaming delta sessions; a no-op-cost caller
    /// guard is `outstanding_rank() > 0`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] if the current configuration is
    /// unsolvable.
    pub fn consolidate(&mut self) -> Result<(), CircuitError> {
        self.rebase()
    }

    /// Runs the full complementarity (PWL state) iteration at `time`,
    /// driving diode conduction states to a consistent operating point —
    /// the session-resident twin of the facade's cold
    /// [`DcSolver::solve`], with every state flip routed through the
    /// session's incremental machinery: diode toggles are absorbed as
    /// batched Woodbury rank-k updates against the standing
    /// factorization, and only non-diode state changes (op-amp rail
    /// moves, which reshape matrix values beyond a symmetric conductance
    /// bump) force a rebase. Returns the number of state iterations.
    ///
    /// Mirrors the cold path's convergence policy exactly: the switching
    /// band escalates (1e-9 → 1e-6 → 1e-3) through the iteration budget,
    /// late iterations flip only the single most-violated device to break
    /// multi-device cycles, and a final widest-band consistency check
    /// accepts physically-negligible boundary violations.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] if a frozen configuration along
    /// the way is unsolvable;
    /// [`CircuitError::StateIterationDiverged`] if no consistent state
    /// assignment is found within the iteration budget.
    pub fn solve_operating_point(&mut self, time: f64) -> Result<usize, CircuitError> {
        let max_iters = mna::max_state_iters(self.ckt.borrow());
        let mut diode_on: Vec<bool> = self
            .diode_elems
            .iter()
            .map(|&idx| self.states[idx] == DeviceState::On)
            .collect();
        for iter in 0..max_iters {
            let band = if iter < max_iters / 2 {
                1e-9
            } else if iter < 3 * max_iters / 4 {
                1e-6
            } else {
                1e-3
            };
            self.solve(time, &diode_on)?;
            let (new_states, changes) =
                mna::next_states_banded(self.ckt.borrow(), &self.st, &self.states, &self.x, band);
            if changes == 0 {
                return Ok(iter + 1);
            }
            if iter > max_iters / 2 {
                // Late in the iteration, flip only the single
                // most-violated device to break multi-device cycles.
                let volt = |node: NodeId| match node.unknown() {
                    Some(u) => self.x[u],
                    None => 0.0,
                };
                let mut best: Option<(usize, f64)> = None;
                for (i, (old, new)) in self.states.iter().zip(&new_states).enumerate() {
                    if old != new {
                        let violation = match &self.ckt.borrow().elements()[i] {
                            Element::Diode {
                                anode,
                                cathode,
                                model,
                            } => (volt(*anode) - volt(*cathode) - model.v_on).abs(),
                            _ => f64::MAX, // op-amp saturation flips take priority
                        };
                        if best.is_none_or(|(_, v)| violation > v) {
                            best = Some((i, violation));
                        }
                    }
                }
                if let Some((i, _)) = best {
                    match self.diode_elems.binary_search(&i) {
                        Ok(di) => diode_on[di] = new_states[i] == DeviceState::On,
                        Err(_) => {
                            self.states[i] = new_states[i];
                            self.last_solve_time = None;
                            self.rebase()?;
                        }
                    }
                }
            } else {
                let mut non_diode_change = false;
                for (di, &idx) in self.diode_elems.iter().enumerate() {
                    diode_on[di] = new_states[idx] == DeviceState::On;
                }
                for (i, (old, new)) in self.states.iter_mut().zip(&new_states).enumerate() {
                    if *old != *new && self.diode_elems.binary_search(&i).is_err() {
                        *old = *new;
                        non_diode_change = true;
                    }
                }
                if non_diode_change {
                    // Op-amp rail moves reshape matrix values beyond a
                    // rank-1 conductance bump: restamp and refactor, and
                    // drop the cached operating point.
                    self.last_solve_time = None;
                    self.rebase()?;
                }
            }
        }
        let (_, changes) =
            mna::next_states_banded(self.ckt.borrow(), &self.st, &self.states, &self.x, 1e-3);
        if changes == 0 {
            Ok(max_iters)
        } else {
            Err(CircuitError::StateIterationDiverged {
                time,
                iterations: max_iters,
            })
        }
    }

    /// Voltage of `node` (0 for ground) in the last solved operating point.
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown() {
            Some(u) => self.x[u],
            None => 0.0,
        }
    }

    /// Raw branch current of `id` in the last solved operating point, if
    /// the element has one.
    pub fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.st.branch_unknown(id).map(|u| self.x[u])
    }

    /// Current delivered by a source-like element out of its positive
    /// terminal (the negative of [`FrozenDcSession::branch_current`]).
    pub fn source_current(&self, id: ElementId) -> Option<f64> {
        self.branch_current(id).map(|i| -i)
    }

    /// The last solved unknown vector (node voltages then branch currents).
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Copies the last solved operating point into an owned [`DcSolution`].
    pub fn solution(&self) -> DcSolution {
        DcSolution {
            inner: Solution::new(self.x.clone(), self.st.clone()),
            states: self.states.clone(),
        }
    }

    /// Linear-algebra effort counters for this session.
    pub fn stats(&self) -> FrozenDcStats {
        self.stats
    }

    /// Wall-clock attribution of the solve loop by phase (stamp /
    /// refactor / triangular solve / Woodbury apply).
    pub fn phase_times(&self) -> FrozenDcPhases {
        self.phases
    }

    /// Structured accounting of the session so far, in the facade's
    /// [`SolveReport`] shape: `iterations` counts the frozen-state solves,
    /// `phases` is present when phase timing was enabled.
    pub fn report(&self) -> SolveReport {
        SolveReport {
            iterations: self.stats.solves,
            factor_nnz: self.lu.factor_nnz(),
            block_count: self.lu.symbolic().block_count(),
            templated: self.templated,
            refinements: self.refinements,
            phases: self.phase_timing.then_some(self.phases),
        }
    }
}

impl<C: BorrowMut<Circuit>> FrozenDcSession<C> {
    /// Mutable access to the owned circuit host. Only available on owning
    /// sessions (`C: BorrowMut<Circuit>`) — borrowed sessions share their
    /// circuit with other readers.
    ///
    /// Handing out `&mut` drops the cached operating point (the next
    /// [`solve`](FrozenDcSession::solve) will not take the quiescent
    /// shortcut), since the caller may change source values the cached
    /// solution was computed against. The session's *structure* (unknown
    /// map, sparsity, factorization) is still frozen: callers must not
    /// add or remove elements, only adjust values — source-value edits
    /// are RHS-only and safe; conductance edits additionally require a
    /// [`consolidate`](FrozenDcSession::consolidate) to restamp the
    /// matrix.
    pub fn host_mut(&mut self) -> &mut C {
        self.last_solve_time = None;
        &mut self.ckt
    }

    /// Updates one source's value in the owned circuit — the
    /// capacity-restamp fast path for streaming delta sessions. Source
    /// values are never stamped into the matrix (they only shape the RHS
    /// assembled fresh each solve), so this requires **no** numeric or
    /// symbolic work: the very next solve sees the new value at full
    /// accuracy against the standing factorization.
    ///
    /// The session's quiescent horizon ([`DcTemplate`] docs) is extended
    /// conservatively to cover the new value's settling time, and the
    /// cached operating point is dropped.
    ///
    /// # Errors
    ///
    /// Changes resistor values in the owned circuit and absorbs all the
    /// matrix deltas as **one batched rank-k Woodbury update** against
    /// the standing factorization — the delta sessions' edge
    /// insert/delete surgery (couplings toggled between a finite value
    /// and `f64::INFINITY`, conservation stars retuned) rides this. The
    /// new values are persisted in the circuit, so later rebases restamp
    /// them; if the batched push cannot hold the updated matrix the
    /// session falls back to an immediate rebase, which is exact.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WrongElementKind`] if an id is not a resistor;
    /// [`CircuitError::InvalidParameter`] for zero/NaN values (the batch
    /// stops at the first invalid entry — earlier entries are applied);
    /// factorization errors from a fallback rebase.
    pub fn set_resistances(&mut self, changes: &[(ElementId, f64)]) -> Result<(), CircuitError> {
        let mut batch: Vec<RankOneTerm> = Vec::new();
        for &(id, ohms) in changes {
            let old = match self.ckt.borrow().elements().get(id.index()) {
                Some(Element::Resistor { resistance, .. }) => *resistance,
                _ => {
                    return Err(CircuitError::WrongElementKind {
                        expected: "resistor",
                    })
                }
            };
            self.ckt.borrow_mut().set_resistance(id, ohms)?;
            // 1/INFINITY == 0.0 exactly: an open branch stamps nothing.
            let dg = 1.0 / ohms - 1.0 / old;
            if dg == 0.0 {
                continue;
            }
            let Some(Element::Resistor { a, b, .. }) = self.ckt.borrow().elements().get(id.index())
            else {
                unreachable!("checked above");
            };
            let mut d: Vec<(usize, f64)> = Vec::with_capacity(2);
            if let Some(u) = a.unknown() {
                d.push((u, 1.0));
            }
            if let Some(u) = b.unknown() {
                d.push((u, -1.0));
            }
            if d.is_empty() {
                continue; // both terminals grounded: no matrix change
            }
            let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();
            batch.push((u, d));
        }
        self.last_solve_time = None;
        if batch.is_empty() {
            return Ok(());
        }
        let terms: Vec<RankOneTermRef<'_>> = batch
            .iter()
            .map(|(u, v)| (u.as_slice(), v.as_slice()))
            .collect();
        let t0 = self.clock();
        let pushed = self.update.push_batch(&self.lu, &terms);
        if let Some(t0) = t0 {
            self.phases.woodbury_ns += t0.elapsed().as_nanos() as u64;
        }
        match pushed {
            Ok(()) => {
                self.stats.rank1_updates += terms.len();
                Ok(())
            }
            // The batch rolled itself back; the circuit already holds the
            // target values, so a rebase restamps them exactly.
            Err(_) => self.rebase(),
        }
    }

    /// Updates one source's value in the owned circuit — the
    /// capacity-restamp fast path for streaming delta sessions. Source
    /// values are never stamped into the matrix (they only shape the RHS
    /// assembled fresh each solve), so this requires **no** numeric or
    /// symbolic work: the very next solve sees the new value at full
    /// accuracy against the standing factorization.
    ///
    /// The session's quiescent horizon ([`DcTemplate`] docs) is extended
    /// conservatively to cover the new value's settling time, and the
    /// cached operating point is dropped.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WrongElementKind`] if `id` is not a voltage or
    /// current source (as [`Circuit::set_source_value`]).
    pub fn set_source_value(
        &mut self,
        id: ElementId,
        value: SourceValue,
    ) -> Result<(), CircuitError> {
        let settles = value.constant_after();
        self.ckt.borrow_mut().set_source_value(id, value)?;
        self.rhs_const_after = self.rhs_const_after.max(settles);
        self.last_solve_time = None;
        Ok(())
    }
}

/// Result of a DC operating-point solve ([`DcSolver`] / [`DcPlan`]).
#[derive(Debug, Clone)]
pub struct DcSolution {
    inner: Solution,
    /// Converged device states (element-indexed).
    states: Vec<DeviceState>,
}

impl DcSolution {
    /// The converged device-state assignment (element-indexed): the fixed
    /// point of the complementarity iteration, or the frozen assignment of
    /// a [`solve_frozen_dc`]. Feed it to [`DcPlan::solve_warm`] to
    /// short-circuit the clamp cascade on the next same-topology solve.
    pub fn device_states(&self) -> &[DeviceState] {
        &self.states
    }

    /// Voltage of `node` (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.inner.voltage(node)
    }

    /// Current delivered by a source-like element out of its positive
    /// terminal (see [`Solution::source_current`]).
    ///
    /// [`Solution::source_current`]: crate::mna::Solution::source_current
    pub fn source_current(&self, id: ElementId) -> Option<f64> {
        self.inner.source_current(id)
    }

    /// Raw branch current of `id`, if the element has one.
    pub fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.inner.branch_current(id)
    }

    /// The full unknown vector (node voltages then branch currents).
    pub fn values(&self) -> &[f64] {
        self.inner.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{DiodeModel, OpAmpModel};
    use crate::source::SourceValue;

    #[test]
    fn voltage_divider() {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(10.0));
        ckt.resistor(top, mid, 3e3);
        ckt.resistor(mid, Circuit::GROUND, 7e3);
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        assert!((sol.voltage(mid) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn source_current_sign() {
        // 1 V across 1 kΩ: source delivers +1 mA out of its + terminal.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.voltage_source(a, Circuit::GROUND, SourceValue::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        assert!((sol.source_current(v).unwrap() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn diode_forward_conducts() {
        // V --R--> a --diode--> gnd : diode on pulls a near 0.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let top = ckt.node("top");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(top, a, 1e3);
        ckt.diode(a, Circuit::GROUND, DiodeModel::ideal());
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        assert!(sol.voltage(a).abs() < 1e-2, "v(a)={}", sol.voltage(a));
    }

    #[test]
    fn diode_reverse_blocks() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let top = ckt.node("top");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(top, a, 1e3);
        // Reversed: cathode at a.
        ckt.diode(Circuit::GROUND, a, DiodeModel::ideal());
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        assert!((sol.voltage(a) - 5.0).abs() < 1e-2);
    }

    #[test]
    fn diode_with_forward_drop() {
        // Ideal source straight into silicon diode + resistor: V(a) ≈ 0.7.
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let a = ckt.node("a");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(top, a, 1e3);
        ckt.diode(a, Circuit::GROUND, DiodeModel::silicon());
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        let v = sol.voltage(a);
        assert!((v - 0.7).abs() < 0.05, "v(a)={v}");
    }

    #[test]
    fn clamp_pair_limits_node_voltage() {
        // The paper's Fig. 1 edge-capacity widget: clamp 0 <= V <= c.
        let mut ckt = Circuit::new();
        let x = ckt.node("x");
        let drive = ckt.node("drive");
        let cap = ckt.node("cap");
        // Try to drive x to 5 V through a resistor; clamp at c = 2 V.
        ckt.voltage_source(drive, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(drive, x, 1e3);
        ckt.voltage_source(cap, Circuit::GROUND, SourceValue::dc(2.0));
        ckt.diode(x, cap, DiodeModel::ideal()); // clamps x <= 2
        ckt.diode(Circuit::GROUND, x, DiodeModel::ideal()); // clamps x >= 0
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        assert!(
            (sol.voltage(x) - 2.0).abs() < 1e-2,
            "v(x)={}",
            sol.voltage(x)
        );
    }

    #[test]
    fn opamp_buffer() {
        // Unity-gain follower: out tied to inverting input.
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(inp, Circuit::GROUND, SourceValue::dc(1.5));
        ckt.opamp(inp, out, out, OpAmpModel::table1());
        ckt.resistor(out, Circuit::GROUND, 1e4);
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        // Finite gain A=1e4: error ~ 1/A.
        assert!((sol.voltage(out) - 1.5).abs() < 1e-3);
    }

    #[test]
    fn opamp_inverting_amplifier() {
        // Gain -2 inverting amp: Rf = 2k, Rin = 1k.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let sum = ckt.node("sum");
        let out = ckt.node("out");
        ckt.voltage_source(vin, Circuit::GROUND, SourceValue::dc(1.0));
        ckt.resistor(vin, sum, 1e3);
        ckt.resistor(sum, out, 2e3);
        ckt.opamp(Circuit::GROUND, sum, out, OpAmpModel::table1());
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        assert!(
            (sol.voltage(out) + 2.0).abs() < 2e-3,
            "v={}",
            sol.voltage(out)
        );
    }

    #[test]
    fn opamp_saturates_open_loop() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(inp, Circuit::GROUND, SourceValue::dc(0.5));
        let mut model = OpAmpModel::table1();
        model.rails = (-10.0, 10.0);
        ckt.opamp(inp, Circuit::GROUND, out, model);
        ckt.resistor(out, Circuit::GROUND, 1e4);
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        // Desired output 0.5 * 1e4 = 5000 V; clamps at the 10 V rail.
        assert!((sol.voltage(out) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn negative_resistor_network() {
        // Voltage negation circuit from Fig. 2: node P with two r to x and
        // x⁻, plus -r/2 to ground, forces V(x⁻) = -V(x).
        let mut ckt = Circuit::new();
        let x = ckt.node("x");
        let xneg = ckt.node("xneg");
        let p = ckt.node("p");
        let r = 10e3;
        ckt.voltage_source(x, Circuit::GROUND, SourceValue::dc(1.2));
        ckt.resistor(x, p, r);
        ckt.resistor(xneg, p, r);
        ckt.resistor(p, Circuit::GROUND, -r / 2.0);
        // x⁻ must be driven by something to fix its level: a load resistor
        // models the downstream conservation network.
        ckt.resistor(xneg, Circuit::GROUND, 10.0 * r);
        let (sol, _) = DcSolver::new().solve(&ckt).unwrap();
        // With a finite load the negation is approximate; the exact
        // relation from KCL at p is V(x) = -V(x⁻) when no current flows
        // into x⁻ externally. Verify the KCL-derived relation instead:
        let vp = sol.voltage(p);
        let vx = sol.voltage(x);
        let vxn = sol.voltage(xneg);
        let lhs = (vx - vp) / r + (vxn - vp) / r;
        let rhs = vp / (-r / 2.0);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, b, 1e3); // entire pair floats
        assert!(matches!(
            DcSolver::new().solve(&ckt),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn session_matches_legacy_frozen_dc_over_toggle_sequence() {
        // A clamp ladder: drive → r → x_k with upper and lower clamp diodes
        // per node, the substrate's capacity-widget shape.
        let mut ckt = Circuit::new();
        let drive = ckt.node("drive");
        ckt.voltage_source(
            drive,
            Circuit::GROUND,
            SourceValue::ramp(0.0, 0.0, 1.0, 6.0),
        );
        let mut prev = drive;
        for k in 0..6 {
            let x = ckt.node(format!("x{k}"));
            let cap = ckt.node(format!("cap{k}"));
            ckt.resistor(prev, x, 1e3);
            ckt.voltage_source(cap, Circuit::GROUND, SourceValue::dc(1.0 + k as f64 * 0.3));
            ckt.diode(x, cap, DiodeModel::ideal());
            ckt.diode(Circuit::GROUND, x, DiodeModel::ideal());
            prev = x;
        }
        let n_diodes = ckt.diode_count();

        let mut session = DcSolver::new().session(&ckt).unwrap();
        let mut cache = None;
        // Deterministic pseudo-random toggle walk with a time-varying RHS.
        let mut on = vec![false; n_diodes];
        let mut lcg = 12345u64;
        for step in 0..200 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let flip = (lcg >> 33) as usize % (n_diodes + 2);
            if flip < n_diodes {
                on[flip] = !on[flip];
            }
            let t = step as f64 / 200.0;
            let reference = solve_frozen_dc(&ckt, t, &on, &mut cache).unwrap();
            session.solve(t, &on).unwrap();
            for (u, rv) in reference.values().iter().enumerate() {
                let sv = session.values()[u];
                assert!(
                    (sv - rv).abs() < 1e-9 * rv.abs().max(1.0),
                    "step {step} unknown {u}: session {sv} vs reference {rv}"
                );
            }
        }
        let stats = session.stats();
        assert_eq!(stats.solves, 200);
        assert!(stats.rank1_updates > 0, "no flips exercised: {stats:?}");
        // The pattern never changes, so (almost) everything beyond the
        // initial factorization must ride the refactor/update fast paths.
        assert!(
            stats.full_factorizations < 10,
            "fresh factorizations dominate: {stats:?}"
        );
    }

    #[test]
    fn session_skips_solves_once_sources_settle() {
        // Step drive settles at t = 0: identical follow-up calls must be
        // answered from the cached operating point.
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let x = ckt.node("x");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::step(0.0, 5.0, 0.0));
        ckt.resistor(top, x, 1e3);
        ckt.diode(x, Circuit::GROUND, DiodeModel::ideal());
        let mut session = DcSolver::new().session(&ckt).unwrap();
        for k in 0..50 {
            session.solve(k as f64 * 1e-9, &[false]).unwrap();
            assert!((session.voltage(x) - 5.0).abs() < 1e-3);
        }
        let stats = session.stats();
        assert_eq!(stats.solves, 50);
        assert!(stats.reused_solutions >= 48, "skip path unused: {stats:?}");

        // A flip invalidates the cache exactly once.
        session.solve(60e-9, &[true]).unwrap();
        assert!(session.voltage(x).abs() < 1e-3);
        session.solve(61e-9, &[true]).unwrap();
        let stats = session.stats();
        assert_eq!(stats.solves, 52);
        assert!(stats.rank1_updates >= 1);
    }

    #[test]
    fn session_recovers_after_failed_solve() {
        // The negative resistor exactly cancels the conductance at `x`
        // once the diode conducts, making the on-configuration singular;
        // the off-configuration is fine.
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let x = ckt.node("x");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(1.0));
        let g_top = 1e-3;
        ckt.resistor(top, x, 1.0 / g_top);
        let model = DiodeModel::ideal();
        ckt.resistor(x, Circuit::GROUND, -1.0 / (1.0 / model.r_on + g_top));
        ckt.diode(x, Circuit::GROUND, model);

        let mut session = DcSolver::new().session(&ckt).unwrap();
        session.solve(0.0, &[false]).unwrap();
        let v_off = session.voltage(x);
        assert!(
            session.solve(1.0, &[true]).is_err(),
            "on-config is singular"
        );
        // After the failure the session must not serve the stale point for
        // the failed configuration, and must recover once asked for a
        // solvable one again.
        session.solve(2.0, &[false]).unwrap();
        assert!(
            (session.voltage(x) - v_off).abs() < 1e-9,
            "recovered solve differs: {} vs {v_off}",
            session.voltage(x)
        );
        let stats = session.stats();
        assert_eq!(
            stats.reused_solutions, 0,
            "stale reuse after error: {stats:?}"
        );
    }

    #[test]
    fn session_zero_rank_budget_still_correct() {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let x = ckt.node("x");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(top, x, 1e3);
        ckt.diode(x, Circuit::GROUND, DiodeModel::ideal());
        let mut session = DcSolver::new().session(&ckt).unwrap().with_max_rank(0);
        session.solve(0.0, &[true]).unwrap();
        assert!(session.voltage(x).abs() < 1e-3);
        session.solve(0.0, &[false]).unwrap();
        assert!((session.voltage(x) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn owned_session_operating_point_tracks_source_edits() {
        // An owning session: the circuit moves in, source values are
        // edited in place, and solve_operating_point re-runs the full
        // complementarity iteration against the standing factorization.
        let mut ckt = Circuit::new();
        let x = ckt.node("x");
        let drive = ckt.node("drive");
        let cap = ckt.node("cap");
        ckt.voltage_source(drive, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(drive, x, 1e3);
        let cap_src = ckt.voltage_source(cap, Circuit::GROUND, SourceValue::dc(2.0));
        ckt.diode(x, cap, DiodeModel::ideal());
        ckt.diode(Circuit::GROUND, x, DiodeModel::ideal());

        let tpl = DcTemplate::new(&ckt).unwrap();
        let reference = ckt.clone();
        let mut session = DcSolver::new().session_from_host(ckt, &tpl).unwrap();
        session.solve_operating_point(0.0).unwrap();
        assert!((session.voltage(x) - 2.0).abs() < 1e-2);

        // Move the clamp around — above the drive (diode off, x floats to
        // 5 V), well below, between — comparing against fresh solves.
        for (k, c) in [(1usize, 7.0f64), (2, 0.5), (3, 3.25)] {
            session
                .set_source_value(cap_src, SourceValue::dc(c))
                .unwrap();
            session.solve_operating_point(k as f64).unwrap();
            let mut fresh = reference.clone();
            fresh.set_source_value(cap_src, SourceValue::dc(c)).unwrap();
            let (sol, _) = DcSolver::new().solve(&fresh).unwrap();
            assert!(
                (session.voltage(x) - sol.voltage(x)).abs() < 1e-9 * sol.voltage(x).abs().max(1.0),
                "cap={c}: session {} vs fresh {}",
                session.voltage(x),
                sol.voltage(x)
            );
        }
        let stats = session.stats();
        assert!(
            stats.rank1_updates > 0,
            "flips not absorbed incrementally: {stats:?}"
        );
    }

    #[test]
    fn consolidate_folds_outstanding_updates() {
        let mut ckt = Circuit::new();
        let x = ckt.node("x");
        let top = ckt.node("top");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(top, x, 1e3);
        ckt.diode(x, Circuit::GROUND, DiodeModel::ideal());
        let mut session = DcSolver::new().session(&ckt).unwrap();
        session.solve(0.0, &[true]).unwrap();
        assert!(session.outstanding_rank() > 0);
        let v = session.voltage(x);
        session.consolidate().unwrap();
        assert_eq!(session.outstanding_rank(), 0);
        // Consolidation must not perturb the operating point.
        session.solve(1.0, &[true]).unwrap();
        assert!((session.voltage(x) - v).abs() < 1e-12);
    }

    /// The clamp-ladder circuit used by the template tests: `stages`
    /// clamp widgets in series, with per-stage resistor and clamp values
    /// taken from the closures (so two structurally identical circuits
    /// with different values are easy to produce).
    fn clamp_ladder(
        stages: usize,
        r_of: impl Fn(usize) -> f64,
        cap_of: impl Fn(usize) -> f64,
        drive: f64,
    ) -> Circuit {
        let mut ckt = Circuit::new();
        let top = ckt.node("drive");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(drive));
        let mut prev = top;
        for k in 0..stages {
            let x = ckt.node(format!("x{k}"));
            let cap = ckt.node(format!("cap{k}"));
            ckt.resistor(prev, x, r_of(k));
            ckt.voltage_source(cap, Circuit::GROUND, SourceValue::dc(cap_of(k)));
            ckt.diode(x, cap, DiodeModel::ideal());
            ckt.diode(Circuit::GROUND, x, DiodeModel::ideal());
            prev = x;
        }
        ckt
    }

    #[test]
    fn template_primed_dc_matches_cold_solve() {
        let base = clamp_ladder(5, |_| 1e3, |k| 1.0 + 0.3 * k as f64, 6.0);
        let tpl = DcTemplate::new(&base).unwrap();
        // Same topology, different resistor and clamp values: the template
        // path must agree with the cold path to machine precision (both
        // solve the same final factored system).
        let other = clamp_ladder(
            5,
            |k| 800.0 + 150.0 * k as f64,
            |k| 0.8 + 0.4 * k as f64,
            5.0,
        );
        let cold = DcSolver::new().solve(&other).unwrap().0;
        let plan = DcSolver::new().plan_from(Arc::new(tpl));
        let (warm, report) = plan.solve(&other).unwrap();
        assert!(report.templated, "plan fast path unused");
        assert!(report.factor_nnz > 0 && report.block_count >= 1);
        for (a, b) in warm.values().iter().zip(cold.values()) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1.0), "{a} vs {b}");
        }
        assert_eq!(warm.device_states(), cold.device_states());
    }

    #[test]
    fn warm_started_solve_matches_and_mismatched_template_falls_back() {
        let base = clamp_ladder(4, |_| 1e3, |k| 1.0 + 0.2 * k as f64, 5.0);
        let tpl = DcTemplate::new(&base).unwrap();
        let plan = DcSolver::new().plan_from(Arc::new(tpl));
        let cold = DcSolver::new().solve(&base).unwrap().0;
        let warm = plan.solve_warm(&base, cold.device_states()).unwrap().0;
        for (a, b) in warm.values().iter().zip(cold.values()) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1.0));
        }
        // A template for a different topology must be ignored, not crash.
        let other = clamp_ladder(6, |_| 1e3, |_| 1.0, 5.0);
        assert!(!plan.template().matches(&other));
        let (sol, report) = plan.solve(&other).unwrap();
        assert!(!report.templated, "mismatched template must fall back cold");
        let re = DcSolver::new().solve(&other).unwrap().0;
        for (a, b) in sol.values().iter().zip(re.values()) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1.0));
        }
    }

    #[test]
    fn singular_warm_start_retries_from_initial_states() {
        // The negative resistor exactly cancels the node conductance when
        // the diode conducts, so the warm-started (diode-on) stamp is
        // singular — but the true operating point keeps `x` slightly
        // positive, the (gnd → x) diode off, and is perfectly solvable.
        // The warm start must fall back to the initial states instead of
        // reporting SingularSystem.
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let x = ckt.node("x");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(-1.0));
        let g_top = 1e-3;
        ckt.resistor(top, x, 1.0 / g_top);
        let model = DiodeModel::ideal();
        ckt.resistor(x, Circuit::GROUND, -1.0 / (1.0 / model.r_on + g_top));
        ckt.diode(Circuit::GROUND, x, model);

        let cold = DcSolver::new().solve(&ckt).unwrap().0;
        let mut warm_states = cold.device_states().to_vec();
        for s in warm_states.iter_mut() {
            if *s == DeviceState::Off {
                *s = DeviceState::On;
            }
        }
        let plan = DcSolver::new().plan(&ckt).unwrap();
        let warm = plan.solve_warm(&ckt, &warm_states).unwrap().0;
        assert!(
            (warm.voltage(x) - cold.voltage(x)).abs() < 1e-9,
            "recovered {} vs cold {}",
            warm.voltage(x),
            cold.voltage(x)
        );
    }

    #[test]
    fn session_with_template_matches_session_cold() {
        let base = clamp_ladder(6, |_| 1e3, |k| 1.0 + 0.3 * k as f64, 6.0);
        // Perturbed values on the same topology (the variation-batch shape).
        let inst = clamp_ladder(
            6,
            |k| 1e3 * (1.0 + 0.01 * k as f64),
            |k| 1.0 + 0.3 * k as f64,
            6.0,
        );
        let tpl = DcTemplate::new(&base).unwrap();
        let n_diodes = inst.diode_count();
        let mut cold = DcSolver::new().session(&inst).unwrap();
        let mut warm = DcSolver::new()
            .plan_from(Arc::new(tpl))
            .session(&inst)
            .unwrap();
        assert_eq!(warm.stats().refactorizations, 1, "numeric fast path unused");
        assert_eq!(warm.stats().full_factorizations, 0);
        let mut on = vec![false; n_diodes];
        let mut lcg = 7u64;
        for step in 0..100 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let flip = (lcg >> 33) as usize % (n_diodes + 1);
            if flip < n_diodes {
                on[flip] = !on[flip];
            }
            let t = step as f64 * 1e-9;
            cold.solve(t, &on).unwrap();
            warm.solve(t, &on).unwrap();
            for (a, b) in warm.values().iter().zip(cold.values()) {
                assert!(
                    (a - b).abs() < 1e-9 * b.abs().max(1.0),
                    "step {step}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn quasi_static_at_time_tracks_ramp() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source(a, Circuit::GROUND, SourceValue::ramp(0.0, 0.0, 1.0, 10.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let sol = DcSolver::new().solve_at(&ckt, 0.35).unwrap().0;
        assert!((sol.voltage(a) - 3.5).abs() < 1e-9);
    }
}
