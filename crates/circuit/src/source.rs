/// Time-dependent value of an independent source.
///
/// # Example
///
/// ```
/// use ohmflow_circuit::SourceValue;
///
/// let step = SourceValue::step(0.0, 3.0, 1e-9);
/// assert_eq!(step.value_at(0.0), 0.0);
/// assert_eq!(step.value_at(2e-9), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SourceValue {
    /// Constant value.
    Dc(f64),
    /// Step from `before` to `after` at time `at`.
    Step {
        /// Value for `t < at`.
        before: f64,
        /// Value for `t >= at`.
        after: f64,
        /// Switching time in seconds.
        at: f64,
    },
    /// Linear ramp from `(t0, v0)` to `(t1, v1)`, clamped outside.
    Ramp {
        /// Ramp start time.
        t0: f64,
        /// Value at and before `t0`.
        v0: f64,
        /// Ramp end time.
        t1: f64,
        /// Value at and after `t1`.
        v1: f64,
    },
    /// Piecewise-linear waveform given as `(time, value)` breakpoints in
    /// ascending time order; clamped outside the covered range.
    Pwl(Vec<(f64, f64)>),
}

impl SourceValue {
    /// Constant source.
    pub fn dc(v: f64) -> Self {
        SourceValue::Dc(v)
    }

    /// Step source (`before` → `after` at time `at`).
    pub fn step(before: f64, after: f64, at: f64) -> Self {
        SourceValue::Step { before, after, at }
    }

    /// Linear ramp between two time/value points.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0`.
    pub fn ramp(t0: f64, v0: f64, t1: f64, v1: f64) -> Self {
        assert!(t1 > t0, "ramp requires t1 > t0");
        SourceValue::Ramp { t0, v0, t1, v1 }
    }

    /// Value at time `t` (seconds).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceValue::Dc(v) => *v,
            SourceValue::Step { before, after, at } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
            SourceValue::Ramp { t0, v0, t1, v1 } => {
                if t <= *t0 {
                    *v0
                } else if t >= *t1 {
                    *v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            SourceValue::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (ta, va) = w[0];
                    let (tb, vb) = w[1];
                    if t <= tb {
                        if tb == ta {
                            return vb;
                        }
                        return va + (vb - va) * (t - ta) / (tb - ta);
                    }
                }
                points
                    .last()
                    .expect("invariant: piecewise sources have at least one point")
                    .1
            }
        }
    }

    /// The instant after which [`SourceValue::value_at`] is constant:
    /// `value_at(a) == value_at(b)` for any `constant_after() <= a <= b`.
    /// Incremental solvers use this to prove an operating point unchanged
    /// between time steps without re-evaluating every source.
    pub fn constant_after(&self) -> f64 {
        match self {
            SourceValue::Dc(_) => f64::NEG_INFINITY,
            SourceValue::Step { at, .. } => *at,
            SourceValue::Ramp { t1, .. } => *t1,
            SourceValue::Pwl(points) => points.last().map_or(f64::NEG_INFINITY, |&(t, _)| t),
        }
    }

    /// Value used for DC operating-point analysis (t = 0⁻, i.e. the value
    /// *before* any step scheduled at `t = 0`).
    pub fn dc_value(&self) -> f64 {
        match self {
            SourceValue::Step { before, .. } => *before,
            other => other.value_at(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let s = SourceValue::dc(2.5);
        assert_eq!(s.value_at(0.0), 2.5);
        assert_eq!(s.value_at(1e9), 2.5);
        assert_eq!(s.dc_value(), 2.5);
    }

    #[test]
    fn step_switches_exactly_at_threshold() {
        let s = SourceValue::step(1.0, 2.0, 5.0);
        assert_eq!(s.value_at(4.999), 1.0);
        assert_eq!(s.value_at(5.0), 2.0);
        assert_eq!(s.dc_value(), 1.0, "DC uses the pre-step value");
    }

    #[test]
    fn ramp_interpolates_and_clamps() {
        let s = SourceValue::ramp(1.0, 0.0, 3.0, 4.0);
        assert_eq!(s.value_at(0.0), 0.0);
        assert_eq!(s.value_at(2.0), 2.0);
        assert_eq!(s.value_at(10.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "t1 > t0")]
    fn degenerate_ramp_panics() {
        let _ = SourceValue::ramp(1.0, 0.0, 1.0, 4.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let s = SourceValue::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]);
        assert_eq!(s.value_at(-1.0), 0.0);
        assert_eq!(s.value_at(0.5), 1.0);
        assert_eq!(s.value_at(1.5), 1.5);
        assert_eq!(s.value_at(5.0), 1.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        assert_eq!(SourceValue::Pwl(Vec::new()).value_at(1.0), 0.0);
    }
}
