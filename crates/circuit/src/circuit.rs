use std::collections::HashMap;

use crate::element::{DiodeModel, Element, MemristorModel, MemristorState, OpAmpModel};
use crate::error::CircuitError;
use crate::ids::{ElementId, NodeId};
use crate::source::SourceValue;

/// A circuit netlist under construction.
///
/// Nodes are created with [`Circuit::node`] (optionally named); devices are
/// added with the typed constructors, each returning an [`ElementId`] handle
/// that can later be used to retune the device (memristor programming,
/// resistance tuning) or probe its branch current.
///
/// # Example
///
/// ```
/// use ohmflow_circuit::{Circuit, SourceValue};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.voltage_source(a, Circuit::GROUND, SourceValue::dc(1.0));
/// ckt.resistor(a, Circuit::GROUND, 1e3);
/// assert_eq!(ckt.node_count(), 2); // ground + a
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    /// Node names, index = NodeId.0 (entry 0 is ground).
    node_names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground (reference) node, implicitly present in every circuit.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_names: vec!["gnd".to_owned()],
            name_index: HashMap::new(),
            elements: Vec::new(),
        }
    }

    /// Creates or retrieves a named node.
    ///
    /// Calling `node` twice with the same name returns the same [`NodeId`],
    /// which makes incremental netlist construction convenient.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.name_index.get(&name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.clone());
        self.name_index.insert(name, id);
        id
    }

    /// Creates an anonymous node. Anonymous nodes carry no name string and
    /// no lookup entry, so bulk circuit construction (a substrate builder
    /// emitting thousands of internal nets) pays no allocation per node;
    /// [`Circuit::node_name`] renders them as `_{index}`.
    pub fn anon_node(&mut self) -> NodeId {
        let id = NodeId(self.node_names.len());
        self.node_names.push(String::new());
        id
    }

    /// Name of a node (ground is `"gnd"`, anonymous nodes are `_{index}`).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> std::borrow::Cow<'_, str> {
        let name = &self.node_names[id.0];
        if name.is_empty() && !id.is_ground() {
            std::borrow::Cow::Owned(format!("_{}", id.0))
        } else {
            std::borrow::Cow::Borrowed(name)
        }
    }

    /// Looks a node up by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "gnd" {
            return Some(Self::GROUND);
        }
        self.name_index.get(name).copied()
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Iterator over every node id, ground first.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len()).map(NodeId)
    }

    /// Iterator over every element id, insertion order.
    pub fn element_ids(&self) -> impl Iterator<Item = ElementId> + '_ {
        (0..self.elements.len()).map(ElementId)
    }

    /// Read-only element list.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Element by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    fn push(&mut self, e: Element) -> ElementId {
        let id = ElementId(self.elements.len());
        self.elements.push(e);
        id
    }

    /// Adds a resistor. Negative resistance is allowed (the substrate's
    /// conservation circuits use ideal negative resistors); zero is not.
    /// `f64::INFINITY` stamps an exact open branch (zero conductance) —
    /// the delta-session machinery toggles couplings between a finite
    /// value and open without touching the matrix structure.
    ///
    /// # Panics
    ///
    /// Panics if `resistance == 0.0` or is NaN.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, resistance: f64) -> ElementId {
        assert!(
            resistance != 0.0 && !resistance.is_nan(),
            "resistance must be nonzero and not NaN, got {resistance}"
        );
        self.push(Element::Resistor { a, b, resistance })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance <= 0.0` or is not finite.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, capacitance: f64) -> ElementId {
        assert!(
            capacitance > 0.0 && capacitance.is_finite(),
            "capacitance must be positive and finite, got {capacitance}"
        );
        self.push(Element::Capacitor { a, b, capacitance })
    }

    /// Adds an independent voltage source (`V(pos) − V(neg) = value(t)`).
    pub fn voltage_source(&mut self, pos: NodeId, neg: NodeId, value: SourceValue) -> ElementId {
        self.push(Element::VoltageSource { pos, neg, value })
    }

    /// Adds an independent current source pushing `value(t)` amps into `pos`.
    pub fn current_source(&mut self, pos: NodeId, neg: NodeId, value: SourceValue) -> ElementId {
        self.push(Element::CurrentSource { pos, neg, value })
    }

    /// Adds a voltage-controlled voltage source.
    pub fn vcvs(
        &mut self,
        out_pos: NodeId,
        out_neg: NodeId,
        ctrl_pos: NodeId,
        ctrl_neg: NodeId,
        gain: f64,
    ) -> ElementId {
        self.push(Element::Vcvs {
            out_pos,
            out_neg,
            ctrl_pos,
            ctrl_neg,
            gain,
        })
    }

    /// Adds a PWL diode conducting from `anode` to `cathode`.
    pub fn diode(&mut self, anode: NodeId, cathode: NodeId, model: DiodeModel) -> ElementId {
        self.push(Element::Diode {
            anode,
            cathode,
            model,
        })
    }

    /// Adds a single-pole op-amp (output referenced to ground).
    pub fn opamp(&mut self, inp: NodeId, inn: NodeId, out: NodeId, model: OpAmpModel) -> ElementId {
        self.push(Element::OpAmp {
            inp,
            inn,
            out,
            model,
        })
    }

    /// Adds a grounded negative resistor with first-order settling dynamics
    /// (exact `−magnitude` Ω in DC; `τ`-lagged current injection in
    /// transient — the behavioural model of an op-amp NIC).
    ///
    /// # Panics
    ///
    /// Panics unless `magnitude > 0` and `tau >= 0` and both are finite.
    pub fn negative_resistor_dyn(&mut self, a: NodeId, magnitude: f64, tau: f64) -> ElementId {
        assert!(
            magnitude > 0.0 && magnitude.is_finite(),
            "negative-resistor magnitude must be positive and finite, got {magnitude}"
        );
        assert!(
            tau >= 0.0 && tau.is_finite(),
            "tau must be nonnegative, got {tau}"
        );
        self.push(Element::NegativeResistorDyn { a, magnitude, tau })
    }

    /// Adds a behavioural memristor in the given initial state.
    pub fn memristor(
        &mut self,
        a: NodeId,
        b: NodeId,
        model: MemristorModel,
        state: MemristorState,
    ) -> ElementId {
        self.push(Element::Memristor {
            a,
            b,
            model,
            state,
            tuned_lrs: None,
        })
    }

    /// Changes a resistor's resistance in place (used by tuning studies
    /// and the delta-session branch surgery). `f64::INFINITY` opens the
    /// branch exactly (zero conductance).
    ///
    /// # Errors
    ///
    /// [`CircuitError::WrongElementKind`] if `id` is not a resistor;
    /// [`CircuitError::InvalidParameter`] for zero/NaN values.
    pub fn set_resistance(&mut self, id: ElementId, resistance: f64) -> Result<(), CircuitError> {
        if resistance == 0.0 || resistance.is_nan() {
            return Err(CircuitError::InvalidParameter {
                what: format!("resistance {resistance}"),
            });
        }
        match self.elements.get_mut(id.0) {
            Some(Element::Resistor { resistance: r, .. }) => {
                *r = resistance;
                Ok(())
            }
            _ => Err(CircuitError::WrongElementKind {
                expected: "resistor",
            }),
        }
    }

    /// Changes a voltage source's waveform in place.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WrongElementKind`] if `id` is not a voltage source.
    pub fn set_source_value(
        &mut self,
        id: ElementId,
        value: SourceValue,
    ) -> Result<(), CircuitError> {
        match self.elements.get_mut(id.0) {
            Some(Element::VoltageSource { value: v, .. }) => {
                *v = value;
                Ok(())
            }
            Some(Element::CurrentSource { value: v, .. }) => {
                *v = value;
                Ok(())
            }
            _ => Err(CircuitError::WrongElementKind { expected: "source" }),
        }
    }

    /// Sets a memristor's resistance state directly (bypassing the
    /// threshold-programming model; the crossbar's §3.1 pulse protocol lives
    /// in the `ohmflow` core crate and calls [`Circuit::program_memristor`]).
    ///
    /// # Errors
    ///
    /// [`CircuitError::WrongElementKind`] if `id` is not a memristor.
    pub fn set_memristor_state(
        &mut self,
        id: ElementId,
        state: MemristorState,
    ) -> Result<(), CircuitError> {
        match self.elements.get_mut(id.0) {
            Some(Element::Memristor { state: s, .. }) => {
                *s = state;
                Ok(())
            }
            _ => Err(CircuitError::WrongElementKind {
                expected: "memristor",
            }),
        }
    }

    /// Applies a programming pulse of `volts` across a memristor
    /// (terminal `a` minus terminal `b`). Positive pulses at or above the
    /// threshold set LRS; negative pulses at or below `-threshold` reset to
    /// HRS; sub-threshold pulses are ignored — matching the behaviour relied
    /// on by the row-by-row crossbar programming protocol of §3.1.
    ///
    /// Returns the resulting state.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WrongElementKind`] if `id` is not a memristor.
    pub fn program_memristor(
        &mut self,
        id: ElementId,
        volts: f64,
    ) -> Result<MemristorState, CircuitError> {
        match self.elements.get_mut(id.0) {
            Some(Element::Memristor { state, model, .. }) => {
                if volts >= model.v_threshold {
                    *state = MemristorState::Lrs;
                } else if volts <= -model.v_threshold {
                    *state = MemristorState::Hrs;
                }
                Ok(*state)
            }
            _ => Err(CircuitError::WrongElementKind {
                expected: "memristor",
            }),
        }
    }

    /// Fine-tunes a memristor's LRS resistance (§4.3.2). Pass `None` to
    /// clear the tuning override.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WrongElementKind`] if `id` is not a memristor;
    /// [`CircuitError::InvalidParameter`] for non-positive values.
    pub fn tune_memristor(
        &mut self,
        id: ElementId,
        lrs_resistance: Option<f64>,
    ) -> Result<(), CircuitError> {
        if let Some(r) = lrs_resistance {
            if r <= 0.0 || !r.is_finite() {
                return Err(CircuitError::InvalidParameter {
                    what: format!("tuned LRS resistance {r}"),
                });
            }
        }
        match self.elements.get_mut(id.0) {
            Some(Element::Memristor { tuned_lrs, .. }) => {
                *tuned_lrs = lrs_resistance;
                Ok(())
            }
            _ => Err(CircuitError::WrongElementKind {
                expected: "memristor",
            }),
        }
    }

    /// Memristor state of element `id`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WrongElementKind`] if `id` is not a memristor.
    pub fn memristor_state(&self, id: ElementId) -> Result<MemristorState, CircuitError> {
        match self.elements.get(id.0) {
            Some(Element::Memristor { state, .. }) => Ok(*state),
            _ => Err(CircuitError::WrongElementKind {
                expected: "memristor",
            }),
        }
    }

    /// Element ids of all diodes, in element order.
    pub fn diode_ids(&self) -> Vec<ElementId> {
        self.elements
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, Element::Diode { .. }).then_some(ElementId(i)))
            .collect()
    }

    /// Number of diodes (each contributes one binary conduction state).
    pub fn diode_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Diode { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_nodes_are_deduplicated() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        let b = ckt.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(ckt.node_count(), 3);
        assert_eq!(ckt.find_node("a"), Some(a));
        assert_eq!(ckt.find_node("gnd"), Some(Circuit::GROUND));
        assert_eq!(ckt.find_node("zzz"), None);
    }

    #[test]
    fn memristor_programming_protocol() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.memristor(
            a,
            Circuit::GROUND,
            MemristorModel::table1(),
            MemristorState::Hrs,
        );
        // Sub-threshold pulse: no change.
        assert_eq!(ckt.program_memristor(m, 1.0).unwrap(), MemristorState::Hrs);
        // Set pulse.
        assert_eq!(ckt.program_memristor(m, 2.0).unwrap(), MemristorState::Lrs);
        // Half-selected cell (threshold/2): must not disturb.
        assert_eq!(
            ckt.program_memristor(m, -0.75).unwrap(),
            MemristorState::Lrs
        );
        // Reset pulse.
        assert_eq!(ckt.program_memristor(m, -2.0).unwrap(), MemristorState::Hrs);
    }

    #[test]
    fn tuning_validation() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.memristor(
            a,
            Circuit::GROUND,
            MemristorModel::table1(),
            MemristorState::Lrs,
        );
        assert!(ckt.tune_memristor(m, Some(-1.0)).is_err());
        ckt.tune_memristor(m, Some(9_500.0)).unwrap();
        assert_eq!(ckt.element(m).memristance(), Some(9_500.0));
        ckt.tune_memristor(m, None).unwrap();
        assert_eq!(ckt.element(m).memristance(), Some(10e3));
    }

    #[test]
    fn wrong_element_kind_errors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.resistor(a, Circuit::GROUND, 1.0);
        assert!(matches!(
            ckt.program_memristor(r, 2.0),
            Err(CircuitError::WrongElementKind { .. })
        ));
        assert!(ckt.set_resistance(r, 2.0).is_ok());
        assert!(ckt.set_resistance(r, 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "resistance must be nonzero")]
    fn zero_resistor_panics() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GROUND, 0.0);
    }

    #[test]
    fn negative_resistance_is_allowed() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GROUND, -5e3);
        assert_eq!(ckt.element_count(), 1);
    }
}
