//! Modified nodal analysis: unknown indexing, matrix/RHS stamping, and the
//! piecewise-linear device-state (complementarity) iteration shared by DC
//! and transient analyses.
//!
//! Unknowns are ordered as `[node voltages (ground excluded) | branch
//! currents]`, with one branch current per voltage source, VCVS and op-amp.
//! All devices are linear *given* a conduction-state assignment for diodes
//! and a saturation-state assignment for op-amps; analyses iterate those
//! states to a consistent fixed point, which is exact for PWL models (no
//! Newton damping heuristics required).

use ohmflow_linalg::{CscMatrix, SparseLu, TripletMatrix};

use crate::circuit::Circuit;
use crate::element::Element;
use crate::error::CircuitError;
use crate::ids::{ElementId, NodeId};

/// Conduction/saturation state of one element.
///
/// Diodes use [`DeviceState::Off`] / [`DeviceState::On`]; op-amps use
/// [`DeviceState::Linear`] / [`DeviceState::SatHigh`] / [`DeviceState::SatLow`];
/// all other elements stay [`DeviceState::Stateless`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceState {
    /// Element has no switching state.
    Stateless,
    /// Diode blocking.
    Off,
    /// Diode conducting.
    On,
    /// Op-amp in its linear region.
    Linear,
    /// Op-amp clamped at the high rail.
    SatHigh,
    /// Op-amp clamped at the low rail.
    SatLow,
}

/// How reactive elements are treated during stamping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum StampMode {
    /// DC operating point: capacitors open, op-amp poles ignored.
    Dc,
    /// Backward-Euler companion models with step `h`.
    BackwardEuler {
        /// Time step (seconds).
        h: f64,
    },
    /// Trapezoidal companion models with step `h`.
    Trapezoidal {
        /// Time step (seconds).
        h: f64,
    },
}

/// Dynamic history carried between transient steps.
#[derive(Debug, Clone, Default)]
pub(crate) struct History {
    /// Previous solution vector (unknown-indexed).
    pub solution: Vec<f64>,
    /// Previous current through each capacitor, element-indexed
    /// (trapezoidal integration needs it; backward Euler ignores it).
    pub cap_currents: Vec<f64>,
}

/// Unknown indexing for a circuit.
#[derive(Debug, Clone)]
pub struct MnaStructure {
    n_node_unknowns: usize,
    /// Branch-current unknown per element (element-indexed).
    branch: Vec<Option<usize>>,
    n_unknowns: usize,
}

impl MnaStructure {
    /// Builds the unknown map for `ckt`.
    pub fn new(ckt: &Circuit) -> Self {
        let n_node_unknowns = ckt.node_count().saturating_sub(1);
        let mut branch = Vec::with_capacity(ckt.element_count());
        let mut next = n_node_unknowns;
        for e in ckt.elements() {
            if e.has_branch_current() {
                branch.push(Some(next));
                next += 1;
            } else {
                branch.push(None);
            }
        }
        MnaStructure {
            n_node_unknowns,
            branch,
            n_unknowns: next,
        }
    }

    /// Total number of unknowns (node voltages + branch currents).
    pub fn n_unknowns(&self) -> usize {
        self.n_unknowns
    }

    /// Number of node-voltage unknowns.
    pub fn n_node_unknowns(&self) -> usize {
        self.n_node_unknowns
    }

    /// Branch-current unknown of an element, if it has one.
    pub fn branch_unknown(&self, id: ElementId) -> Option<usize> {
        self.branch.get(id.0).copied().flatten()
    }
}

/// A solved operating point (node voltages and branch currents).
#[derive(Debug, Clone)]
pub struct Solution {
    values: Vec<f64>,
    structure: MnaStructure,
}

impl Solution {
    pub(crate) fn new(values: Vec<f64>, structure: MnaStructure) -> Self {
        Solution { values, structure }
    }

    /// Voltage of `node` (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown() {
            Some(u) => self.values[u],
            None => 0.0,
        }
    }

    /// Raw branch current unknown of `id` (the current flowing from the
    /// positive terminal *into* the element), if the element has one.
    pub fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.structure.branch_unknown(id).map(|u| self.values[u])
    }

    /// Current delivered by a source-like element *out of* its positive
    /// terminal into the circuit (the negative of [`Solution::branch_current`]).
    ///
    /// This is the `I_flow` readout of Eq. (7a) when applied to `V_flow`.
    pub fn source_current(&self, id: ElementId) -> Option<f64> {
        self.branch_current(id).map(|i| -i)
    }

    /// The raw unknown vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Initial state assignment: diodes off, op-amps linear.
pub(crate) fn initial_states(ckt: &Circuit) -> Vec<DeviceState> {
    ckt.elements()
        .iter()
        .map(|e| match e {
            Element::Diode { .. } => DeviceState::Off,
            Element::OpAmp { .. } => DeviceState::Linear,
            _ => DeviceState::Stateless,
        })
        .collect()
}

/// Stamps the MNA matrix for the given states and mode.
pub(crate) fn stamp_matrix(
    ckt: &Circuit,
    st: &MnaStructure,
    states: &[DeviceState],
    mode: StampMode,
) -> TripletMatrix {
    let n = st.n_unknowns;
    let mut m = TripletMatrix::with_capacity(n, n, 4 * ckt.element_count() + n);

    let add = |m: &mut TripletMatrix, r: Option<usize>, c: Option<usize>, v: f64| {
        if let (Some(r), Some(c)) = (r, c) {
            m.push(r, c, v);
        }
    };
    let conductance_stamp = |m: &mut TripletMatrix, a: NodeId, b: NodeId, g: f64| {
        let (ua, ub) = (a.unknown(), b.unknown());
        if let Some(ua) = ua {
            m.push(ua, ua, g);
        }
        if let Some(ub) = ub {
            m.push(ub, ub, g);
        }
        if let (Some(ua), Some(ub)) = (ua, ub) {
            m.push(ua, ub, -g);
            m.push(ub, ua, -g);
        }
    };

    for (idx, e) in ckt.elements().iter().enumerate() {
        let ib = st.branch[idx];
        match e {
            Element::Resistor { a, b, resistance } => {
                conductance_stamp(&mut m, *a, *b, 1.0 / resistance);
            }
            Element::Memristor { a, b, .. } => {
                let r = e
                    .memristance()
                    .expect("invariant: memristor elements carry a memristance");
                conductance_stamp(&mut m, *a, *b, 1.0 / r);
            }
            Element::Capacitor { a, b, capacitance } => match mode {
                StampMode::Dc => {
                    // Open in DC; a tiny conductance keeps otherwise
                    // capacitor-only nodes from floating.
                    conductance_stamp(&mut m, *a, *b, 1e-15);
                }
                StampMode::BackwardEuler { h } => {
                    conductance_stamp(&mut m, *a, *b, capacitance / h);
                }
                StampMode::Trapezoidal { h } => {
                    conductance_stamp(&mut m, *a, *b, 2.0 * capacitance / h);
                }
            },
            Element::VoltageSource { pos, neg, .. } => {
                let ib = ib.expect("invariant: vsource rows were assigned a branch");
                add(&mut m, pos.unknown(), Some(ib), 1.0);
                add(&mut m, neg.unknown(), Some(ib), -1.0);
                add(&mut m, Some(ib), pos.unknown(), 1.0);
                add(&mut m, Some(ib), neg.unknown(), -1.0);
            }
            Element::CurrentSource { .. } => {
                // RHS only.
            }
            Element::Vcvs {
                out_pos,
                out_neg,
                ctrl_pos,
                ctrl_neg,
                gain,
            } => {
                let ib = ib.expect("invariant: vcvs rows were assigned a branch");
                add(&mut m, out_pos.unknown(), Some(ib), 1.0);
                add(&mut m, out_neg.unknown(), Some(ib), -1.0);
                add(&mut m, Some(ib), out_pos.unknown(), 1.0);
                add(&mut m, Some(ib), out_neg.unknown(), -1.0);
                add(&mut m, Some(ib), ctrl_pos.unknown(), -gain);
                add(&mut m, Some(ib), ctrl_neg.unknown(), *gain);
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let g = match states[idx] {
                    DeviceState::On => 1.0 / model.r_on,
                    _ => 1.0 / model.r_off,
                };
                conductance_stamp(&mut m, *anode, *cathode, g);
            }
            Element::NegativeResistorDyn { a, magnitude, tau } => {
                let ib = ib.expect("invariant: dynamic negative resistors were assigned a branch");
                // KCL: branch current leaves node a.
                add(&mut m, a.unknown(), Some(ib), 1.0);
                // Branch equation: DC  i + V/Rm = 0;
                // BE  (1 + τ/h) i + V/Rm = (τ/h) i_prev;
                // TRAP (0.5 + τ/h) i + 0.5 V/Rm = (τ/h − 0.5) i_prev − 0.5 V_prev/Rm.
                let g = 1.0 / magnitude;
                match mode {
                    StampMode::Dc => {
                        add(&mut m, Some(ib), Some(ib), 1.0);
                        add(&mut m, Some(ib), a.unknown(), g);
                    }
                    StampMode::BackwardEuler { h } => {
                        add(&mut m, Some(ib), Some(ib), 1.0 + tau / h);
                        add(&mut m, Some(ib), a.unknown(), g);
                    }
                    StampMode::Trapezoidal { h } => {
                        add(&mut m, Some(ib), Some(ib), 0.5 + tau / h);
                        add(&mut m, Some(ib), a.unknown(), 0.5 * g);
                    }
                }
            }
            Element::OpAmp {
                inp,
                inn,
                out,
                model,
            } => {
                let ib = ib.expect("invariant: opamp rows were assigned a branch");
                // Output behaves as a grounded voltage source carrying ib.
                add(&mut m, out.unknown(), Some(ib), 1.0);
                match states[idx] {
                    DeviceState::SatHigh | DeviceState::SatLow => {
                        // v_out = rail (RHS carries the rail value).
                        add(&mut m, Some(ib), out.unknown(), 1.0);
                    }
                    _ => {
                        // Linear region.
                        let (c_out, c_vd) = match mode {
                            StampMode::Dc => (1.0, model.gain),
                            StampMode::BackwardEuler { h } => {
                                let toh = model.time_constant() / h;
                                (1.0 + toh, model.gain)
                            }
                            StampMode::Trapezoidal { h } => {
                                let toh = model.time_constant() / h;
                                (0.5 + toh, 0.5 * model.gain)
                            }
                        };
                        add(&mut m, Some(ib), out.unknown(), c_out);
                        add(&mut m, Some(ib), inp.unknown(), -c_vd);
                        add(&mut m, Some(ib), inn.unknown(), c_vd);
                        if model.r_out > 0.0 {
                            add(&mut m, Some(ib), Some(ib), model.r_out);
                        }
                    }
                }
            }
        }
    }
    m
}

/// Stamps the RHS vector for the given states, time and mode.
pub(crate) fn stamp_rhs(
    ckt: &Circuit,
    st: &MnaStructure,
    states: &[DeviceState],
    time: f64,
    mode: StampMode,
    history: Option<&History>,
    dc_pre_step: bool,
) -> Vec<f64> {
    let mut b = Vec::new();
    stamp_rhs_into(&mut b, ckt, st, states, time, mode, history, dc_pre_step);
    b
}

/// [`stamp_rhs`] into a caller-provided buffer, reusing its allocation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stamp_rhs_into(
    b: &mut Vec<f64>,
    ckt: &Circuit,
    st: &MnaStructure,
    states: &[DeviceState],
    time: f64,
    mode: StampMode,
    history: Option<&History>,
    dc_pre_step: bool,
) {
    b.clear();
    b.resize(st.n_unknowns, 0.0);
    let prev_v = |node: NodeId, h: &History| match node.unknown() {
        Some(u) => h.solution[u],
        None => 0.0,
    };

    for (idx, e) in ckt.elements().iter().enumerate() {
        let ib = st.branch[idx];
        match e {
            Element::VoltageSource { value, .. } => {
                let v = if dc_pre_step {
                    value.dc_value()
                } else {
                    value.value_at(time)
                };
                b[ib.expect("invariant: vsource rows were assigned a branch")] += v;
            }
            Element::CurrentSource { pos, neg, value } => {
                let j = if dc_pre_step {
                    value.dc_value()
                } else {
                    value.value_at(time)
                };
                if let Some(u) = pos.unknown() {
                    b[u] += j;
                }
                if let Some(u) = neg.unknown() {
                    b[u] -= j;
                }
            }
            Element::Capacitor {
                a,
                b: nb,
                capacitance,
            } => {
                if let Some(h) = history {
                    match mode {
                        StampMode::BackwardEuler { h: dt } => {
                            let g = capacitance / dt;
                            let vprev = prev_v(*a, h) - prev_v(*nb, h);
                            if let Some(u) = a.unknown() {
                                b[u] += g * vprev;
                            }
                            if let Some(u) = nb.unknown() {
                                b[u] -= g * vprev;
                            }
                        }
                        StampMode::Trapezoidal { h: dt } => {
                            let g = 2.0 * capacitance / dt;
                            let vprev = prev_v(*a, h) - prev_v(*nb, h);
                            let iprev = h.cap_currents[idx];
                            let inj = g * vprev + iprev;
                            if let Some(u) = a.unknown() {
                                b[u] += inj;
                            }
                            if let Some(u) = nb.unknown() {
                                b[u] -= inj;
                            }
                        }
                        StampMode::Dc => {}
                    }
                }
            }
            Element::Diode { model, .. } if states[idx] == DeviceState::On && model.v_on != 0.0 => {
                let g = 1.0 / model.r_on;
                let (anode, cathode) = e.terminals();
                if let Some(u) = anode.unknown() {
                    b[u] += g * model.v_on;
                }
                if let Some(u) = cathode.unknown() {
                    b[u] -= g * model.v_on;
                }
            }
            Element::NegativeResistorDyn { a, magnitude, tau } => {
                if let Some(hist) = history {
                    let row =
                        ib.expect("invariant: dynamic negative resistors were assigned a branch");
                    let i_prev = hist.solution[row];
                    let v_prev = match a.unknown() {
                        Some(u) => hist.solution[u],
                        None => 0.0,
                    };
                    match mode {
                        StampMode::BackwardEuler { h } => {
                            b[row] += tau / h * i_prev;
                        }
                        StampMode::Trapezoidal { h } => {
                            b[row] += (tau / h - 0.5) * i_prev - 0.5 * v_prev / magnitude;
                        }
                        StampMode::Dc => {}
                    }
                }
            }
            Element::OpAmp {
                inp,
                inn,
                out,
                model,
            } => {
                let row = ib.expect("invariant: opamp rows were assigned a branch");
                match states[idx] {
                    DeviceState::SatHigh => b[row] += model.rails.1,
                    DeviceState::SatLow => b[row] += model.rails.0,
                    _ => {
                        if let Some(h) = history {
                            match mode {
                                StampMode::BackwardEuler { h: dt } => {
                                    let toh = model.time_constant() / dt;
                                    b[row] += toh * prev_v(*out, h);
                                }
                                StampMode::Trapezoidal { h: dt } => {
                                    let toh = model.time_constant() / dt;
                                    let vd_prev = prev_v(*inp, h) - prev_v(*inn, h);
                                    b[row] +=
                                        (toh - 0.5) * prev_v(*out, h) + 0.5 * model.gain * vd_prev;
                                }
                                StampMode::Dc => {}
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Computes the consistent next state of every stateful device from a
/// candidate solution. Returns `(new_states, n_changes)`.
/// Computes consistent next states with an explicit switching band:
/// candidate flips whose
/// boundary violation is within `band` volts are suppressed. Late in a
/// cycling complementarity iteration the band is escalated — near the
/// boundary both states are physically equivalent (zero diode current).
pub(crate) fn next_states_banded(
    ckt: &Circuit,
    st: &MnaStructure,
    states: &[DeviceState],
    x: &[f64],
    band: f64,
) -> (Vec<DeviceState>, usize) {
    let volt = |node: NodeId| match node.unknown() {
        Some(u) => x[u],
        None => 0.0,
    };
    let mut result = states.to_vec();
    let mut changes = 0;
    for (idx, e) in ckt.elements().iter().enumerate() {
        match e {
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let vak = volt(*anode) - volt(*cathode);
                // Hysteresis avoids chattering at complementarity
                // boundaries (where the exact solution has zero diode
                // current and both states are physically equivalent).
                let want = match states[idx] {
                    DeviceState::On => vak > model.v_on - band,
                    _ => vak > model.v_on + band,
                };
                let new = if want {
                    DeviceState::On
                } else {
                    DeviceState::Off
                };
                if new != result[idx] {
                    result[idx] = new;
                    changes += 1;
                }
            }
            Element::OpAmp {
                inp,
                inn,
                out,
                model,
                ..
            } => {
                // While linear, saturation is judged on the *actual* output
                // (the pole keeps it small during transients even when the
                // input difference is large); while saturated, the desired
                // open-loop value decides when to re-enter the linear region.
                let desired = model.gain * (volt(*inp) - volt(*inn));
                let vo = volt(*out);
                let new = match states[idx] {
                    DeviceState::SatHigh => {
                        if desired < model.rails.1 {
                            DeviceState::Linear
                        } else {
                            DeviceState::SatHigh
                        }
                    }
                    DeviceState::SatLow => {
                        if desired > model.rails.0 {
                            DeviceState::Linear
                        } else {
                            DeviceState::SatLow
                        }
                    }
                    _ => {
                        if vo > model.rails.1 + 1e-9 {
                            DeviceState::SatHigh
                        } else if vo < model.rails.0 - 1e-9 {
                            DeviceState::SatLow
                        } else {
                            DeviceState::Linear
                        }
                    }
                };
                if new != result[idx] {
                    result[idx] = new;
                    changes += 1;
                }
            }
            _ => {}
        }
        let _ = st;
    }
    (result, changes)
}

/// Maximum state-iteration count before declaring divergence. Scales with
/// the number of switching devices because the substrate's diodes can turn
/// on in long causal chains.
pub(crate) fn max_state_iters(ckt: &Circuit) -> usize {
    200 + 4 * ckt.diode_count()
}

/// f64 iterative refinement of `x` against the stamped system `m x = b`:
/// recompute the residual in f64, solve the correction through `lu`, and
/// apply it, up to `max_steps` times. Stops at the f64 noise floor
/// (residual at machine epsilon relative to `b`) or when the residual
/// stops shrinking — the limiting accuracy of refining with f64
/// residuals, whatever the factor's storage precision. Returns the number
/// of correction steps applied. A failed correction solve simply stops
/// the loop: `x` is never worse than the input.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_f64(
    lu: &SparseLu,
    m: &CscMatrix,
    b: &[f64],
    x: &mut [f64],
    work: &mut Vec<f64>,
    r: &mut Vec<f64>,
    dx: &mut Vec<f64>,
    max_steps: usize,
) -> usize {
    use ohmflow_linalg::vecops;
    let bnorm = vecops::norm_inf(b);
    let mut prev = f64::INFINITY;
    let mut steps = 0;
    for _ in 0..max_steps {
        m.mul_vec_into(x, r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let rnorm = vecops::norm_inf(r);
        if steps > 0 && (rnorm <= f64::EPSILON * (1.0 + bnorm) || rnorm >= 0.5 * prev) {
            break;
        }
        prev = rnorm;
        if lu.solve_into(r, work, dx).is_err() {
            break;
        }
        vecops::axpy(1.0, dx, x);
        steps += 1;
    }
    steps
}

/// Solves the PWL system at one instant: iterate (factor, solve, restate)
/// until the state assignment is a fixed point. Returns the solution
/// vector together with the number of state iterations it took — the
/// `iterations` field of the facade's `SolveReport`.
///
/// `factor_cache` carries `(states, matrix-lu, stamped matrix)` between
/// calls so an unchanged state assignment reuses the previous
/// factorization, and callers can compute residuals (iterative refinement)
/// against the already-stamped matrix instead of re-stamping it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_pwl(
    ckt: &Circuit,
    st: &MnaStructure,
    states: &mut Vec<DeviceState>,
    time: f64,
    mode: StampMode,
    history: Option<&History>,
    dc_pre_step: bool,
    lu_opts: &crate::LuOptions,
    factor_cache: &mut Option<(Vec<DeviceState>, SparseLu, CscMatrix)>,
) -> Result<(Vec<f64>, usize), CircuitError> {
    let max_iters = max_state_iters(ckt);
    let mut x = Vec::new();
    // RHS and triangular-solve scratch reused across state iterations (and,
    // via the caller's buffers, across transient time steps): the fixed
    // point loop allocates only when a state flip forces a re-stamp.
    let mut b = Vec::new();
    let mut work = Vec::new();
    let mut lu_ws = ohmflow_linalg::LuWorkspace::new();
    // Residual/correction scratch for the narrow-factor refinement below
    // (left empty — never touched — under `Precision::F64`).
    let mut resid = Vec::new();
    let mut dx = Vec::new();
    for iter in 0..max_iters {
        // Escalate the switching band late in the iteration: flips that
        // only fight over nanovolt boundaries are physically meaningless.
        let band = if iter < max_iters / 2 {
            1e-9
        } else if iter < 3 * max_iters / 4 {
            1e-6
        } else {
            1e-3
        };
        let lu_ok = matches!(factor_cache, Some((s, _, _)) if s == states);
        if !lu_ok {
            let m = stamp_matrix(ckt, st, states, mode).to_csc();
            // A state flip only changes matrix *values* (a diode swaps
            // conductance, an op-amp rail swaps a couple of coefficients),
            // so try the numeric-only refactorization against the cached
            // symbolic pattern first and fall back to a fresh pivoting
            // factorization when the pattern moved or a frozen pivot died.
            let reused = factor_cache
                .take()
                .and_then(|(_, mut lu, _)| lu.refactor_with(&m, &mut lu_ws).is_ok().then_some(lu));
            let lu = match reused {
                Some(lu) => lu,
                None => SparseLu::factor_with(&m, lu_opts)?,
            };
            *factor_cache = Some((states.clone(), lu, m));
        }
        let (_, lu, m) = factor_cache
            .as_ref()
            .expect("invariant: factor cache is populated before reuse");
        stamp_rhs_into(&mut b, ckt, st, states, time, mode, history, dc_pre_step);
        lu.solve_into(&b, &mut work, &mut x)?;
        if lu.symbolic().precision() == ohmflow_linalg::Precision::F32Refined {
            // The device-state decisions below compare voltages against
            // switching thresholds; a bare narrow-factor solve leaves
            // ~1e-7 relative error in them, enough to flip a marginal
            // device differently than the f64 path and converge to a
            // different (or no) fixed point. Refine to f64 quality first.
            refine_f64(lu, m, &b, &mut x, &mut work, &mut resid, &mut dx, 4);
        }
        let (new_states, changes) = next_states_banded(ckt, st, states, &x, band);
        if changes == 0 {
            return Ok((x, iter + 1));
        }
        // Late in the iteration, flip only the single most-violated device
        // to break multi-device cycles.
        if iter > max_iters / 2 {
            let volt = |node: crate::ids::NodeId| match node.unknown() {
                Some(u) => x[u],
                None => 0.0,
            };
            let mut best: Option<(usize, f64)> = None;
            for (i, (old, new)) in states.iter().zip(&new_states).enumerate() {
                if old != new {
                    let violation = match &ckt.elements()[i] {
                        Element::Diode {
                            anode,
                            cathode,
                            model,
                        } => (volt(*anode) - volt(*cathode) - model.v_on).abs(),
                        _ => f64::MAX, // op-amp saturation flips take priority
                    };
                    if best.is_none_or(|(_, v)| violation > v) {
                        best = Some((i, violation));
                    }
                }
            }
            if let Some((i, _)) = best {
                states[i] = new_states[i];
            }
        } else {
            *states = new_states;
        }
    }
    // One final consistency check with the widest band: accept if the last
    // solve was consistent up to physically-negligible boundary violations.
    let (_, changes) = next_states_banded(ckt, st, states, &x, 1e-3);
    if changes == 0 {
        Ok((x, max_iters))
    } else {
        Err(CircuitError::StateIterationDiverged {
            time,
            iterations: max_iters,
        })
    }
}
