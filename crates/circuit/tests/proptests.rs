//! Property-based tests for the circuit simulator: random passive ladder
//! networks must satisfy basic circuit laws.

use proptest::prelude::*;

use ohmflow_circuit::{Circuit, DcSolver, DiodeModel, SourceValue};

/// A random resistive ladder from a 1 V source to ground.
fn arb_ladder() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(10.0..10_000.0f64, 2..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ladder_voltages_are_monotone_and_bounded(rs in arb_ladder()) {
        // v_src --R0-- n1 --R1-- n2 ... --Rk-- gnd
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let src = ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(1.0));
        let mut prev = top;
        let mut nodes = Vec::new();
        for (i, &r) in rs.iter().enumerate() {
            let nxt = if i + 1 == rs.len() {
                Circuit::GROUND
            } else {
                ckt.node(format!("n{i}"))
            };
            ckt.resistor(prev, nxt, r);
            if !nxt.is_ground() {
                nodes.push(nxt);
            }
            prev = nxt;
        }
        let sol = DcSolver::new().solve(&ckt).unwrap().0;
        // Voltages decrease monotonically along the ladder and stay in [0,1].
        let mut last = 1.0f64;
        for n in nodes {
            let v = sol.voltage(n);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "v={v}");
            prop_assert!(v <= last + 1e-9, "not monotone: {v} after {last}");
            last = v;
        }
        // Source current equals 1 V over the series total (Ohm's law).
        let total: f64 = rs.iter().sum();
        let i = sol.source_current(src).unwrap();
        prop_assert!((i - 1.0 / total).abs() < 1e-9 * (1.0 + 1.0 / total));
    }

    #[test]
    fn superposition_holds_for_two_sources(
        r1 in 100.0..10_000.0f64,
        r2 in 100.0..10_000.0f64,
        r3 in 100.0..10_000.0f64,
        v1 in -5.0..5.0f64,
        v2 in -5.0..5.0f64,
    ) {
        // Classic two-source divider: superposition must hold exactly for
        // the linear network.
        let solve = |va: f64, vb: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            let mid = ckt.node("mid");
            ckt.voltage_source(a, Circuit::GROUND, SourceValue::dc(va));
            ckt.voltage_source(b, Circuit::GROUND, SourceValue::dc(vb));
            ckt.resistor(a, mid, r1);
            ckt.resistor(b, mid, r2);
            ckt.resistor(mid, Circuit::GROUND, r3);
            DcSolver::new().solve(&ckt).unwrap().0.voltage(mid)
        };
        let both = solve(v1, v2);
        let only1 = solve(v1, 0.0);
        let only2 = solve(0.0, v2);
        prop_assert!((both - (only1 + only2)).abs() < 1e-9);
    }

    #[test]
    fn diode_clamp_never_violated(drive in 0.0..20.0f64, clamp in 0.1..5.0f64) {
        let mut ckt = Circuit::new();
        let d = ckt.node("drive");
        let x = ckt.node("x");
        let c = ckt.node("clamp");
        ckt.voltage_source(d, Circuit::GROUND, SourceValue::dc(drive));
        ckt.resistor(d, x, 1e3);
        ckt.voltage_source(c, Circuit::GROUND, SourceValue::dc(clamp));
        ckt.diode(x, c, DiodeModel::ideal());
        ckt.diode(Circuit::GROUND, x, DiodeModel::ideal());
        let sol = DcSolver::new().solve(&ckt).unwrap().0;
        let v = sol.voltage(x);
        // Within clamp bounds up to the r_on/r divider error.
        prop_assert!(v >= -0.01 && v <= clamp + 0.01, "v={v} clamp={clamp}");
        // When the drive is below the clamp, the node follows the drive.
        if drive < clamp {
            prop_assert!((v - drive).abs() < 0.01, "v={v} drive={drive}");
        }
    }
}
