use std::error::Error;
use std::fmt;

use ohmflow_circuit::CircuitError;
use ohmflow_graph::GraphError;

/// Errors produced by the analog max-flow substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum AnalogError {
    /// The underlying circuit simulation failed.
    Circuit(CircuitError),
    /// The input graph is invalid or does not fit the substrate.
    Graph(GraphError),
    /// The graph does not fit the configured crossbar dimensions.
    CrossbarTooSmall {
        /// Vertices required by the graph (+1 row for the objective).
        required: usize,
        /// Crossbar side length.
        available: usize,
    },
    /// A configuration value is invalid.
    InvalidConfig {
        /// Human-readable description.
        what: String,
    },
    /// The simulated circuit never settled within the simulation window.
    NotConverged {
        /// Simulated window (seconds).
        t_stop: f64,
    },
    /// The §4.3.2 tuning loop failed to reach its target precision.
    TuningFailed {
        /// Residual voltage error after the iteration budget.
        residual: f64,
    },
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::Circuit(e) => write!(f, "circuit simulation failed: {e}"),
            AnalogError::Graph(e) => write!(f, "invalid graph: {e}"),
            AnalogError::CrossbarTooSmall { required, available } => write!(
                f,
                "graph needs a {required}x{required} crossbar but only {available}x{available} is available"
            ),
            AnalogError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            AnalogError::NotConverged { t_stop } => {
                write!(f, "circuit did not settle within {t_stop:.3e}s")
            }
            AnalogError::TuningFailed { residual } => {
                write!(f, "resistance tuning failed (residual {residual:.3e}V)")
            }
        }
    }
}

impl Error for AnalogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalogError::Circuit(e) => Some(e),
            AnalogError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for AnalogError {
    fn from(e: CircuitError) -> Self {
        AnalogError::Circuit(e)
    }
}

impl From<GraphError> for AnalogError {
    fn from(e: GraphError) -> Self {
        AnalogError::Graph(e)
    }
}
