//! §5.2 analytical power and energy model.
//!
//! The op-amps dominate: one per edge (negation widget) plus one per vertex
//! (conservation star), so `P ≈ (|E| + |V|) · P_amp`. Resistor dissipation
//! can be scaled away (§4.3.1 shows only resistance *ratios* matter), and
//! absent edges are power-gated.

use ohmflow_graph::FlowNetwork;

/// The §5.2 power model.
///
/// # Example
///
/// ```
/// use ohmflow::power::PowerModel;
///
/// let m = PowerModel::paper();
/// // 5 W embedded budget → ~10⁴ active edges (§5.2).
/// assert_eq!(m.max_edges(5.0), 10_000);
/// // 150 W server budget → 3×10⁵ edges.
/// assert_eq!(m.max_edges(150.0), 300_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Average op-amp power (W). §5.2: 1 V supply × 500 µA = 500 µW.
    pub p_amp: f64,
}

impl PowerModel {
    /// The paper's 32 nm assumption: `P_amp = 500 µW`.
    pub fn paper() -> Self {
        PowerModel { p_amp: 500e-6 }
    }

    /// Substrate power for a graph with `|V|` vertices and `|E|` edges:
    /// `(|E| + |V|) · P_amp`.
    pub fn power(&self, vertices: usize, edges: usize) -> f64 {
        (vertices + edges) as f64 * self.p_amp
    }

    /// Substrate power for a specific graph.
    pub fn power_for(&self, g: &FlowNetwork) -> f64 {
        self.power(g.vertex_count(), g.edge_count())
    }

    /// Maximum number of active edges under a power budget, assuming
    /// `|V| ≪ |E|` (the §5.2 approximation).
    pub fn max_edges(&self, budget_watts: f64) -> usize {
        (budget_watts / self.p_amp) as usize
    }

    /// Energy for one solve: `P · t_convergence` (joules).
    pub fn energy(&self, vertices: usize, edges: usize, convergence_time: f64) -> f64 {
        self.power(vertices, edges) * convergence_time
    }
}

/// Energy-efficiency comparison against a CPU baseline (§5.2's closing
/// argument: comparable power, 150–1500× faster ⇒ 2–3 orders of magnitude
/// better energy per solve).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyComparison {
    /// Substrate energy per solve (J).
    pub substrate_joules: f64,
    /// CPU energy per solve (J).
    pub cpu_joules: f64,
    /// `cpu_joules / substrate_joules`.
    pub efficiency_factor: f64,
}

impl EnergyComparison {
    /// Compares a substrate solve against a CPU solve.
    ///
    /// # Panics
    ///
    /// Panics if any duration or power is not positive.
    pub fn new(
        model: &PowerModel,
        g: &FlowNetwork,
        substrate_seconds: f64,
        cpu_seconds: f64,
        cpu_watts: f64,
    ) -> Self {
        assert!(
            substrate_seconds > 0.0 && cpu_seconds > 0.0 && cpu_watts > 0.0,
            "durations and power must be positive"
        );
        let substrate_joules = model.power_for(g) * substrate_seconds;
        let cpu_joules = cpu_watts * cpu_seconds;
        EnergyComparison {
            substrate_joules,
            cpu_joules,
            efficiency_factor: cpu_joules / substrate_joules,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohmflow_graph::generators;

    #[test]
    fn paper_budgets() {
        let m = PowerModel::paper();
        assert_eq!(m.max_edges(5.0), 10_000);
        assert_eq!(m.max_edges(150.0), 300_000);
    }

    #[test]
    fn power_scales_with_graph() {
        let m = PowerModel::paper();
        let g = generators::fig5a();
        // 5 vertices + 5 edges = 10 op-amps → 5 mW.
        assert!((m.power_for(&g) - 5e-3).abs() < 1e-12);
        assert!(m.power(0, 0) == 0.0);
    }

    #[test]
    fn energy_comparison_factor() {
        let m = PowerModel::paper();
        let g = generators::fig5a();
        // Substrate: 5 mW × 1 µs = 5 nJ. CPU: 100 W × 1 ms = 0.1 J.
        let cmp = EnergyComparison::new(&m, &g, 1e-6, 1e-3, 100.0);
        assert!((cmp.substrate_joules - 5e-9).abs() < 1e-15);
        assert!((cmp.efficiency_factor - 2e7).abs() / 2e7 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cpu_time_panics() {
        let m = PowerModel::paper();
        let g = generators::fig5a();
        let _ = EnergyComparison::new(&m, &g, 1e-6, 0.0, 100.0);
    }
}
