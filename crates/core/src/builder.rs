//! Direct-mapped construction of the max-flow circuit (§2 of the paper).
//!
//! For every edge there is a circuit node whose steady-state voltage is the
//! flow on that edge:
//!
//! * **capacity widget** (Fig. 1): two clamp diodes and a (shared,
//!   quantized) voltage source enforce `0 ≤ V(x) ≤ Q(c)`,
//! * **conservation widget** (Fig. 2): per interior vertex, each incoming
//!   edge gets a voltage-negation sub-circuit (two `r` resistors into a
//!   node `P` terminated by `−r/2`), all incident edges connect through `r`
//!   resistors to the vertex node `n_v`, which is terminated by
//!   `−R = −r/(j+k)` — KCL then forces `Σ V(in) = Σ V(out)`,
//! * **objective widget** (Fig. 3): `V_flow` drives every source-adjacent
//!   edge node through an `r` resistor; Eq. (7a) recovers the flow value
//!   from the source current.
//!
//! Negative resistors are realized either as ideal negative-conductance
//! elements or as op-amp negative-impedance converters (Fig. 9a), whose
//! finite gain-bandwidth product gives the substrate its §5.1 convergence
//! dynamics.

use std::sync::Arc;

use ohmflow_circuit::{Circuit, DcTemplate, ElementId, NodeId, SourceValue};

use ohmflow_graph::FlowNetwork;

use crate::params::SubstrateParams;
use crate::quantize::{ExactScaling, Quantizer};
use crate::AnalogError;

/// How edge capacities become clamp voltages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityMapping {
    /// One (deduplicated) exact voltage per capacity value — the §2
    /// idealization.
    Exact,
    /// §4.1 quantization onto `levels` shared levels spanning `[0, V_dd]`.
    Quantized {
        /// Number of voltage levels `N`.
        levels: u32,
    },
}

/// How the substrate's negative resistors are realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NegativeResistorImpl {
    /// Ideal negative-conductance elements. Exact in DC; **dynamically
    /// unstable** under transient analysis with parasitic capacitance (the
    /// constraint nodes have zero net self-conductance), so use this for
    /// quasi-static solves only.
    Ideal,
    /// Behavioural op-amp NIC (default): exact `−R` in DC, first-order
    /// settling at the op-amp's dominant-pole time constant
    /// `τ = A/(2π·GBW)` in transient. This slow constraint enforcement is
    /// the two-time-scale structure that keeps the network stable and gives
    /// the §5.1 GBW-dependent convergence times.
    #[default]
    Dynamic,
    /// Literal op-amp negative-impedance converter per Fig. 9a (three
    /// resistors + op-amp with positive feedback). Retained for the
    /// ablation study that demonstrates NIC latch-up — a grounded NIC
    /// loaded with an impedance at or above its magnitude is not
    /// open-circuit stable, which is exactly the substrate's regime.
    OpAmp,
}

/// Shape of the `V_flow` drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Drive {
    /// Step from 0 to `V_flow` at `t = 0` (the §5.1 experiment).
    Step,
    /// Constant `V_flow` (DC / quasi-static studies).
    Dc,
    /// Linear ramp from 0 to `V_flow` over the given duration (the §6.5
    /// slow-varying analysis).
    Ramp {
        /// Ramp duration in seconds.
        duration: f64,
    },
}

/// Build options for [`build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildOptions {
    /// Capacity→voltage mapping.
    pub capacity_mapping: CapacityMapping,
    /// Negative-resistor realization.
    pub negative_resistor: NegativeResistorImpl,
    /// Add the §5.1 parasitic capacitance to every circuit net.
    pub parasitics: bool,
    /// `V_flow` drive shape.
    pub drive: Drive,
    /// Relative over-sizing `δ` of every negative-resistance magnitude:
    /// the realized value is `−R(1+δ)`.
    ///
    /// `None` applies the paper's own finite-gain formula (§4.2),
    /// `R_eff = −(1 + (1/A)(R0/R_target))·R_target` with `R0 = r`, which
    /// over-sizes each NIC by `δ = r/(A·R_target)`. This tiny margin is
    /// **essential**: it leaves a small positive net conductance at every
    /// constraint node — with exact values the conservation sub-circuits
    /// have zero damping and the transient diverges. `Some(0.0)` reproduces
    /// that ideal-but-unstable case for the ablation study.
    pub nic_margin: Option<f64>,
    /// Leak conductance at every constraint node (`P` and `n_v`), expressed
    /// as a fraction `ε` of the unit conductance `1/r`: a resistor `r/ε` to
    /// ground is added in parallel with each negative resistor.
    ///
    /// The exact Fig. 2 widgets are *pure integrators* of constraint
    /// violation (their node conductances sum to zero); cascaded pure
    /// integrators with the op-amp lag ring without bound. A small leak
    /// turns each into a stable slow pole — the classic "leaky multiplier"
    /// of analog LP solvers (Kennedy & Chua, the paper's ref.\ 24) — at the
    /// cost of an `O(ε)` constraint softening that adds to the solution
    /// error. `0.0` disables the leak (quasi-static solves don't need it).
    pub constraint_leak: f64,
    /// Column ordering for every LU factorization derived from this build
    /// (templates, sessions, cold DC solves). Folded into the topology
    /// template key, so caches never mix symbolic plans built under
    /// different orderings. Defaults to AMD + block-triangular form.
    pub lu_ordering: ohmflow_circuit::ColumnOrdering,
    /// Numeric precision of those factorizations' stored values. Folded
    /// into the topology template key alongside the ordering, so a cached
    /// f32 plan is never handed to an f64 solve (or vice versa). Defaults
    /// to full [`ohmflow_circuit::Precision::F64`].
    pub lu_precision: ohmflow_circuit::Precision,
}

impl BuildOptions {
    /// Ideal steady-state configuration: exact capacities, ideal negative
    /// resistors, no parasitics, DC drive.
    pub fn ideal() -> Self {
        BuildOptions {
            capacity_mapping: CapacityMapping::Exact,
            negative_resistor: NegativeResistorImpl::Ideal,
            parasitics: false,
            drive: Drive::Dc,
            nic_margin: Some(0.0),
            constraint_leak: 0.0,
            lu_ordering: ohmflow_circuit::ColumnOrdering::default(),
            lu_precision: ohmflow_circuit::Precision::default(),
        }
    }

    /// The §5.1 evaluation configuration: quantized levels (Table 1's
    /// `N = 20` comes from `params` at build time), op-amp NICs,
    /// parasitics, step drive.
    pub fn evaluation(params: &SubstrateParams) -> Self {
        BuildOptions {
            capacity_mapping: CapacityMapping::Quantized {
                levels: params.voltage_levels,
            },
            negative_resistor: NegativeResistorImpl::Dynamic,
            parasitics: true,
            drive: Drive::Step,
            nic_margin: Some(0.0),
            constraint_leak: 0.0,
            lu_ordering: ohmflow_circuit::ColumnOrdering::default(),
            lu_precision: ohmflow_circuit::Precision::default(),
        }
    }

    /// The [`ohmflow_circuit::LuOptions`] this build implies: the chosen
    /// ordering over otherwise-default factorization parameters.
    pub fn lu_options(&self) -> ohmflow_circuit::LuOptions {
        ohmflow_circuit::LuOptions {
            ordering: self.lu_ordering,
            precision: self.lu_precision,
            ..Default::default()
        }
    }
}

/// Structural statistics of a built substrate circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildStats {
    /// Circuit nodes (including ground).
    pub nodes: usize,
    /// Total elements.
    pub elements: usize,
    /// Clamp diodes.
    pub diodes: usize,
    /// Realized op-amps (0 with ideal negative resistors).
    pub opamps: usize,
    /// Negative resistors (ideal or NIC), `= |E'| + |V'|` where the primes
    /// count negation widgets and conservation stars actually built.
    pub negative_resistors: usize,
    /// Independent voltage sources (V_flow + capacity levels).
    pub sources: usize,
}

/// How capacity-level voltage sources are laid out in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LevelLayout {
    /// One source per *distinct* clamp voltage (the §4.1 hardware layout;
    /// the default for [`build`]). Compact, but the number of sources —
    /// and therefore the MNA structure — depends on the capacity values.
    Shared,
    /// One source per clamped edge. Slightly larger netlist whose
    /// *structure* is a pure function of the graph topology, so a
    /// [`SubstrateTemplate`](crate::template::SubstrateTemplate) can
    /// restamp any capacity assignment as a value-only update.
    PerEdge,
}

/// Value-only surgery handles for one non-circulation edge: the element
/// ids a delta session toggles to excise the edge from (or re-admit it
/// to) the network without touching structure. See
/// [`build_with_layout`]'s widget construction for which resistor each
/// id names.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EdgeSurgery {
    /// The tail-side coupling: `vflow -> x` for source-out edges, else
    /// `x -> nv_u` (the out-edge leg of `u`'s conservation widget).
    pub u_coupling: ElementId,
    /// The head-side coupling `xneg -> nv_v` (the in-edge negation leg of
    /// `v`'s conservation widget); `None` when the head is the sink.
    pub v_coupling: Option<ElementId>,
    /// Ghost anchor `x -> GND`, stamped open (zero conductance) at build:
    /// removal closes it so the excised widget cluster stays anchored and
    /// nonsingular regardless of its clamp-diode states.
    pub anchor: ElementId,
}

/// Handles for retuning a conservation widget's star negative resistor
/// when the vertex's live incident-edge count changes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StarSurgery {
    /// The `-r/n` star element at the widget's summing node (Ideal
    /// implementation: a plain resistor).
    pub element: ElementId,
    /// Incident (non-circulation) edge count the build stamped for.
    pub n_base: usize,
}

/// Everything a delta session needs to do exact edge insert/delete
/// surgery by value-only resistor edits. `retunable` is only set for
/// [`NegativeResistorImpl::Ideal`] builds — other implementations realize
/// the star magnitude inside an op-amp subcircuit, and sessions on them
/// fall back to structural re-keys for topology deltas.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaMetadata {
    /// Per-edge handles (`None` for circulation edges, which stamp
    /// nothing).
    pub edges: Vec<Option<EdgeSurgery>>,
    /// Per-vertex star handles (`None` for source/sink and widget-less
    /// vertices).
    pub stars: Vec<Option<StarSurgery>>,
    /// Whether star retuning (and thus fast removal) is supported.
    pub retunable: bool,
    /// Unit resistance the couplings were stamped with.
    pub r: f64,
    /// Op-amp open-loop gain (the default §4.2 margin formula).
    pub gain: f64,
    /// Explicit NIC margin override, when the build used one.
    pub nic_margin: Option<f64>,
}

impl DeltaMetadata {
    /// The star magnitude the builder stamps for `n` incident edges —
    /// kept expression-identical to [`build_with_layout`]'s
    /// `neg_resistor`/`margin_for` so a retuned value is bit-for-bit the
    /// value a fresh build of the live graph would stamp.
    pub fn star_resistance(&self, n: usize) -> f64 {
        let magnitude = self.r / n as f64;
        let margin = match self.nic_margin {
            Some(d) => d,
            None => self.r / (self.gain * magnitude),
        };
        -(magnitude * (1.0 + margin))
    }
}

/// A max-flow instance mapped onto the analog substrate.
#[derive(Debug, Clone)]
pub struct SubstrateCircuit {
    circuit: Circuit,
    edge_nodes: Vec<NodeId>,
    /// Per edge: (lower clamp diode, upper clamp diode) element ids.
    clamp_diodes: Vec<(ElementId, ElementId)>,
    vflow: ElementId,
    vflow_value: f64,
    /// Volts per unit flow: `V_dd / C`.
    volts_per_flow: f64,
    /// Clamp voltage per edge after capacity mapping.
    clamp_volts: Vec<f64>,
    /// Edge ids leaving the source.
    source_out: Vec<usize>,
    /// Edge ids entering the source (counted negatively in the value).
    source_in: Vec<usize>,
    stats: BuildStats,
    /// Shared cold-path artifacts (structure + symbolic/numeric LU) when
    /// this circuit came out of a template instantiation; the solve paths
    /// pick it up transparently.
    dc_template: Option<Arc<DcTemplate>>,
    /// Edge insert/delete surgery handles for delta sessions.
    delta_meta: DeltaMetadata,
}

/// Builds the direct-mapped circuit of `g` (Figs. 1–3).
///
/// # Errors
///
/// [`AnalogError::InvalidConfig`] for degenerate options (e.g. a ramp of
/// non-positive duration) and [`AnalogError::Graph`] style issues coming
/// from an edge-less graph.
pub fn build(
    g: &FlowNetwork,
    params: &SubstrateParams,
    opts: &BuildOptions,
) -> Result<SubstrateCircuit, AnalogError> {
    build_with_layout(g, params, opts, LevelLayout::Shared).map(|(sc, _)| sc)
}

/// [`build`] with an explicit capacity-level source layout; also returns
/// the per-edge level-source element ids ([`LevelLayout::PerEdge`] only —
/// `None` entries mark grounded circulation edges, and every entry is
/// `None` under [`LevelLayout::Shared`]). The template machinery uses the
/// ids to restamp capacities as a value-only update.
pub(crate) fn build_with_layout(
    g: &FlowNetwork,
    params: &SubstrateParams,
    opts: &BuildOptions,
    layout: LevelLayout,
) -> Result<(SubstrateCircuit, Vec<Option<ElementId>>), AnalogError> {
    if g.edge_count() == 0 {
        return Err(AnalogError::InvalidConfig {
            what: "graph has no edges".to_owned(),
        });
    }
    if let Drive::Ramp { duration } = opts.drive {
        if duration <= 0.0 || duration.is_nan() {
            return Err(AnalogError::InvalidConfig {
                what: format!("ramp duration {duration}"),
            });
        }
    }

    let c_max = g.max_capacity() as f64;
    let exact = ExactScaling::new(params.v_dd, c_max);
    let quantizer = match opts.capacity_mapping {
        CapacityMapping::Exact => None,
        CapacityMapping::Quantized { levels } => Some(Quantizer::new(levels, params.v_dd, c_max)),
    };
    let clamp_volts: Vec<f64> = g
        .edges()
        .iter()
        .map(|e| match &quantizer {
            None => exact.to_volts(e.capacity as f64),
            Some(q) => q.quantize(e.capacity as f64),
        })
        .collect();

    let mut ckt = Circuit::new();
    let r = params.r_unit;
    let mut stats = BuildStats::default();

    // V_flow drive.
    let vflow_node = ckt.node("vflow");
    let drive_wave = match opts.drive {
        Drive::Step => SourceValue::step(0.0, params.v_flow, 0.0),
        Drive::Dc => SourceValue::dc(params.v_flow),
        Drive::Ramp { duration } => SourceValue::ramp(0.0, 0.0, duration, params.v_flow),
    };
    let vflow = ckt.voltage_source(vflow_node, Circuit::GROUND, drive_wave);
    stats.sources += 1;

    // Shared capacity-level sources (one per distinct clamp voltage).
    let mut level_nodes: Vec<(u64, NodeId)> = Vec::new();
    let mut level_node = |ckt: &mut Circuit, stats: &mut BuildStats, volts: f64| -> NodeId {
        let key = volts.to_bits();
        if let Some(&(_, node)) = level_nodes.iter().find(|&&(k, _)| k == key) {
            return node;
        }
        let node = ckt.anon_node();
        ckt.voltage_source(node, Circuit::GROUND, SourceValue::dc(volts));
        stats.sources += 1;
        level_nodes.push((key, node));
        node
    };

    // Edge nodes + capacity widgets (Fig. 1).
    //
    // Edges *into the source* or *out of the sink* can only carry
    // circulation: they never contribute to the net flow, but the drive
    // (which maximizes the *gross* outflow of `s`) would happily route
    // flow in circles through them. The classical reduction deletes them;
    // in circuit terms their edge node is tied to ground (flow 0), which
    // keeps edge-id indexing and the incident conservation widgets
    // consistent.
    let mut edge_nodes = Vec::with_capacity(g.edge_count());
    let mut clamp_diodes = Vec::with_capacity(g.edge_count());
    let mut level_sources: Vec<Option<ElementId>> = Vec::with_capacity(g.edge_count());
    let mut edge_u_coupling: Vec<Option<ElementId>> = vec![None; g.edge_count()];
    let mut edge_v_coupling: Vec<Option<ElementId>> = vec![None; g.edge_count()];
    let mut edge_anchor: Vec<Option<ElementId>> = vec![None; g.edge_count()];
    for (k, e) in g.edges().iter().enumerate() {
        if e.to == g.source() || e.from == g.sink() {
            edge_nodes.push(Circuit::GROUND);
            clamp_diodes.push((ElementId::invalid(), ElementId::invalid()));
            level_sources.push(None);
            continue;
        }
        let x = ckt.anon_node();
        edge_nodes.push(x);
        // Ghost anchor for delta-session removal surgery: open (zero
        // conductance, stamps exact 0 into the already-present diagonal)
        // while the edge is live, closed to `r` when the edge is excised
        // so the dangling widget cluster stays nonsingular.
        edge_anchor[k] = Some(ckt.resistor(x, Circuit::GROUND, f64::INFINITY));
        // Lower clamp: diode from ground to x turns on when V(x) < 0.
        let lo = ckt.diode(Circuit::GROUND, x, params.diode);
        // Upper clamp: diode from x to the level source turns on when
        // V(x) > Q(c). The §2.1 footnote's turn-on compensation: *lower*
        // the clamp source by v_on so the conducting drop pins the node at
        // exactly Q(c).
        let lvl_volts = clamp_volts[k] - params.diode.v_on;
        let lvl = match layout {
            LevelLayout::Shared => {
                level_sources.push(None);
                level_node(&mut ckt, &mut stats, lvl_volts)
            }
            LevelLayout::PerEdge => {
                let node = ckt.anon_node();
                let src = ckt.voltage_source(node, Circuit::GROUND, SourceValue::dc(lvl_volts));
                stats.sources += 1;
                level_sources.push(Some(src));
                node
            }
        };
        let hi = ckt.diode(x, lvl, params.diode);
        clamp_diodes.push((lo, hi));
        stats.diodes += 2;
    }

    // Negative-resistor factory. The realized magnitude carries the §4.2
    // finite-gain margin (see `BuildOptions::nic_margin`).
    let margin_for = |magnitude: f64| match opts.nic_margin {
        Some(d) => d,
        None => params.r_unit / (params.opamp.gain * magnitude),
    };
    let leak = opts.constraint_leak;
    let neg_resistor = |ckt: &mut Circuit,
                        stats: &mut BuildStats,
                        node: NodeId,
                        magnitude: f64|
     -> Option<ElementId> {
        stats.negative_resistors += 1;
        if leak > 0.0 {
            ckt.resistor(node, Circuit::GROUND, r / leak);
        }
        let magnitude = magnitude * (1.0 + margin_for(magnitude));
        match opts.negative_resistor {
            NegativeResistorImpl::Ideal => Some(ckt.resistor(node, Circuit::GROUND, -magnitude)),
            NegativeResistorImpl::Dynamic => {
                ckt.negative_resistor_dyn(node, magnitude, params.opamp.time_constant());
                None
            }
            NegativeResistorImpl::OpAmp => {
                // Grounded NIC (Fig. 9a): opamp + R_target feedback to the
                // non-inverting input, R0/R0 divider to the inverting one.
                let out = ckt.anon_node();
                let inv = ckt.anon_node();
                ckt.opamp(node, inv, out, params.opamp);
                ckt.resistor(out, node, magnitude);
                ckt.resistor(out, inv, r);
                ckt.resistor(inv, Circuit::GROUND, r);
                stats.opamps += 1;
                None
            }
        }
    };

    // Objective widget (Fig. 3): V_flow through r to each source-out edge.
    let source_out: Vec<usize> = g.out_edges(g.source()).map(|e| e.0).collect();
    let source_in: Vec<usize> = g.in_edges(g.source()).map(|e| e.0).collect();
    for &k in &source_out {
        edge_u_coupling[k] = Some(ckt.resistor(vflow_node, edge_nodes[k], r));
    }

    // Conservation widgets (Fig. 2) for interior vertices. Edges whose
    // node was grounded (circulation edges, see above) carry exactly zero
    // flow and are excluded: including them would build negation/star
    // sub-circuits entirely anchored at ground, which are singular.
    let mut stars: Vec<Option<StarSurgery>> = vec![None; g.vertex_count()];
    for (v, star) in stars.iter_mut().enumerate() {
        if v == g.source() || v == g.sink() {
            continue;
        }
        let out_live: Vec<usize> = g
            .out_edges(v)
            .map(|e| e.0)
            .filter(|&k| !edge_nodes[k].is_ground())
            .collect();
        let in_live: Vec<usize> = g
            .in_edges(v)
            .map(|e| e.0)
            .filter(|&k| !edge_nodes[k].is_ground())
            .collect();
        let n_incident = out_live.len() + in_live.len();
        if n_incident == 0 {
            continue;
        }
        let nv = ckt.anon_node();
        for &k in &out_live {
            edge_u_coupling[k] = Some(ckt.resistor(edge_nodes[k], nv, r));
        }
        for &k in &in_live {
            // Negation sub-circuit: x → P ← x⁻, with −r/2 at P.
            let p = ckt.anon_node();
            let xneg = ckt.anon_node();
            ckt.resistor(edge_nodes[k], p, r);
            ckt.resistor(xneg, p, r);
            neg_resistor(&mut ckt, &mut stats, p, r / 2.0);
            edge_v_coupling[k] = Some(ckt.resistor(xneg, nv, r));
        }
        *star = neg_resistor(&mut ckt, &mut stats, nv, r / n_incident as f64).map(|element| {
            StarSurgery {
                element,
                n_base: n_incident,
            }
        });
    }

    // Parasitic capacitance on every net (§5.1 adds 20 fF per net).
    if opts.parasitics && params.parasitic_cap > 0.0 {
        let nets: Vec<NodeId> = ckt.node_ids().filter(|n| !n.is_ground()).collect();
        for n in nets {
            ckt.capacitor(n, Circuit::GROUND, params.parasitic_cap);
        }
    }

    stats.nodes = ckt.node_count();
    stats.elements = ckt.element_count();

    let delta_meta = DeltaMetadata {
        edges: edge_anchor
            .iter()
            .zip(&edge_u_coupling)
            .zip(&edge_v_coupling)
            .map(|((anchor, u), v)| {
                anchor.map(|anchor| EdgeSurgery {
                    u_coupling: u.expect("invariant: non-circulation edges carry a tail coupling"),
                    v_coupling: *v,
                    anchor,
                })
            })
            .collect(),
        stars,
        retunable: matches!(opts.negative_resistor, NegativeResistorImpl::Ideal),
        r,
        gain: params.opamp.gain,
        nic_margin: opts.nic_margin,
    };

    Ok((
        SubstrateCircuit {
            circuit: ckt,
            edge_nodes,
            clamp_diodes,
            vflow,
            vflow_value: params.v_flow,
            volts_per_flow: params.v_dd / c_max,
            clamp_volts,
            source_out,
            source_in,
            stats,
            dc_template: None,
            delta_meta,
        },
        level_sources,
    ))
}

/// A [`SubstrateCircuit`] *is* a circuit plus readout metadata, and the
/// circuit layer's session machinery is generic over anything that
/// borrows a [`Circuit`]
/// ([`FrozenDcSession<C>`](ohmflow_circuit::FrozenDcSession)) — these
/// impls let a delta session move a whole substrate into an owning
/// session and keep restamping its sources in place.
impl std::borrow::Borrow<Circuit> for SubstrateCircuit {
    fn borrow(&self) -> &Circuit {
        &self.circuit
    }
}

impl std::borrow::BorrowMut<Circuit> for SubstrateCircuit {
    fn borrow_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }
}

impl SubstrateCircuit {
    /// The underlying netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The shared cold-path artifacts this circuit was instantiated with
    /// (template instantiations only): MNA structure, base sparsity and a
    /// symbolic + numeric factorization to start solves from. The solve
    /// paths use it when present and validate it against the circuit, so a
    /// perturbed or hand-edited instance degrades to the cold path instead
    /// of computing with stale artifacts.
    pub fn dc_template(&self) -> Option<&Arc<DcTemplate>> {
        self.dc_template.as_ref()
    }

    /// Attaches shared cold-path artifacts (template instantiation).
    pub(crate) fn attach_dc_template(&mut self, tpl: Arc<DcTemplate>) {
        self.dc_template = Some(tpl);
    }

    /// Overwrites the capacity-derived values (template instantiation):
    /// per-edge clamp voltages and the flow-readout scale.
    pub(crate) fn set_capacity_values(&mut self, clamp_volts: Vec<f64>, volts_per_flow: f64) {
        self.clamp_volts = clamp_volts;
        self.volts_per_flow = volts_per_flow;
    }

    /// Mutable access (used by non-ideality injection and tuning).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// Value-only surgery handles for delta sessions.
    pub(crate) fn delta_meta(&self) -> &DeltaMetadata {
        &self.delta_meta
    }

    /// Circuit node carrying the flow of edge `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn edge_node(&self, k: usize) -> NodeId {
        self.edge_nodes[k]
    }

    /// All edge nodes, edge-id order.
    pub fn edge_nodes(&self) -> &[NodeId] {
        &self.edge_nodes
    }

    /// Per-edge clamp diodes `(lower, upper)`, edge-id order.
    pub fn clamp_diodes(&self) -> &[(ElementId, ElementId)] {
        &self.clamp_diodes
    }

    /// The `V_flow` source element (probe its current for Eq. 7a).
    pub fn vflow_source(&self) -> ElementId {
        self.vflow
    }

    /// The configured `V_flow` drive level (volts).
    pub fn vflow_value(&self) -> f64 {
        self.vflow_value
    }

    /// Volts per unit of flow (`V_dd / C`).
    pub fn volts_per_flow(&self) -> f64 {
        self.volts_per_flow
    }

    /// Clamp voltage of edge `k` after capacity mapping.
    pub fn clamp_volts(&self, k: usize) -> f64 {
        self.clamp_volts[k]
    }

    /// Edge ids leaving the source vertex (the edges [`flow_value`]
    /// sums positively).
    ///
    /// [`flow_value`]: SubstrateCircuit::flow_value
    pub fn source_out_edges(&self) -> &[usize] {
        &self.source_out
    }

    /// Edge ids entering the source vertex (counted negatively in the
    /// flow value).
    pub fn source_in_edges(&self) -> &[usize] {
        &self.source_in
    }

    /// Build statistics.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Converts per-edge node voltages into flow units.
    pub fn edge_flows(&self, voltage_of: impl Fn(NodeId) -> f64) -> Vec<f64> {
        self.edge_nodes
            .iter()
            .map(|&n| voltage_of(n) / self.volts_per_flow)
            .collect()
    }

    /// Flow value `|f|` (flow units) from node voltages: net flow out of
    /// the source vertex.
    pub fn flow_value(&self, voltage_of: impl Fn(NodeId) -> f64) -> f64 {
        let volts: f64 = self
            .source_out
            .iter()
            .map(|&k| voltage_of(self.edge_nodes[k]))
            .sum::<f64>()
            - self
                .source_in
                .iter()
                .map(|&k| voltage_of(self.edge_nodes[k]))
                .sum::<f64>();
        volts / self.volts_per_flow
    }

    /// Eq. (7a) readout: recovers `Σ V(x_i)` over the source-adjacent edges
    /// from the measured `I_flow`, then converts to flow units. This is the
    /// measurement the physical substrate performs (§3.2): it only needs
    /// the current through `V_flow`, not the internal node voltages.
    pub fn flow_value_from_current(&self, i_flow: f64, r_unit: f64) -> f64 {
        let t = self.source_out.len() as f64;
        let sum_v = t * self.vflow_value - r_unit * i_flow;
        let inflow: f64 = 0.0; // the physical readout cannot see s-inbound edges
        (sum_v - inflow) / self.volts_per_flow
    }
}
