//! §6.4 dual decomposition: solving max-flow/min-cut instances that exceed
//! the substrate by splitting the *dual* (min-cut) problem into two
//! overlapping subproblems and iterating to consensus on the shared
//! variables, reconfiguring and reusing one substrate per subproblem solve
//! (the Strandmark–Kahl scheme the paper cites as ref.\ 39).
//!
//! The Lagrangian of §6.4 prices the duplicated potentials: each overlap
//! vertex `i` carries a multiplier `λ_i`, subproblem `M` minimizes
//! `E_M(x) + Σ λ_i x_i` and `N` minimizes `E_N(y) − Σ λ_i y_i`; the
//! subgradient step `λ += α (x_i − y_i)` drives the copies together. With
//! binary cut indicators the price enters as a *terminal-capacity*
//! adjustment on the overlap vertices, which is exactly how we realize it:
//! each subproblem is a min-cut instance whose overlap vertices get
//! λ-weighted edges to the local source/sink.

use ohmflow_graph::partition::{overlap_partition, OverlapSplit};
use ohmflow_graph::FlowNetwork;
use ohmflow_maxflow::min_cut;

use crate::crossbar::Crossbar;
use crate::params::SubstrateParams;
use crate::AnalogError;

/// Options for [`DualDecomposition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecomposeOptions {
    /// Maximum subgradient iterations.
    pub max_iterations: usize,
    /// Initial subgradient step (in capacity units); decays harmonically.
    pub initial_step: f64,
    /// Capacity scale used to keep λ integral (subproblems use integer
    /// capacities).
    pub scale: i64,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions {
            max_iterations: 60,
            initial_step: 4.0,
            scale: 16,
        }
    }
}

/// Result of a decomposition run.
#[derive(Debug, Clone)]
pub struct DecompositionResult {
    /// Best *feasible* global cut value found (evaluating the consensus
    /// labelling on the full graph) — an upper bound on the optimum.
    pub cut_value: i64,
    /// `true` for vertices labelled source-side by the consensus.
    pub source_side: Vec<bool>,
    /// Iterations executed.
    pub iterations: usize,
    /// `true` if the two subproblems agreed on every overlap vertex.
    pub converged: bool,
    /// Number of overlap (duplicated) vertices.
    pub overlap_size: usize,
    /// Crossbar programming cycles spent across all reconfigurations
    /// (2 subproblems × iterations × n rows) — the reuse cost the §6.4
    /// proposal trades against substrate size.
    pub programming_cycles: usize,
}

/// The §6.4 dual-decomposition driver.
#[derive(Debug, Clone)]
pub struct DualDecomposition {
    opts: DecomposeOptions,
}

impl DualDecomposition {
    /// Creates a driver with the given options.
    pub fn new(opts: DecomposeOptions) -> Self {
        DualDecomposition { opts }
    }

    /// Splits `g`, iterates the subgradient consensus, and returns the best
    /// feasible global cut. Subproblem min-cuts stand in for substrate
    /// solves (each would be one configure-and-run pass, whose programming
    /// cost is accounted via `substrate`).
    ///
    /// # Errors
    ///
    /// [`AnalogError::CrossbarTooSmall`] if a subproblem exceeds the
    /// substrate; [`AnalogError::InvalidConfig`] for degenerate splits.
    pub fn solve(
        &self,
        g: &FlowNetwork,
        substrate: &SubstrateParams,
    ) -> Result<DecompositionResult, AnalogError> {
        let split = overlap_partition(g);
        let scale = self.opts.scale;

        // Build the two sub-instances once; λ terms are re-applied per
        // iteration as terminal edges.
        let (s, t) = (g.source(), g.sink());
        let mut lambda = vec![0i64; g.vertex_count()];
        let mut best_cut = i64::MAX;
        let mut best_side = vec![false; g.vertex_count()];
        let mut converged = false;
        let mut iterations = 0;
        let mut programming_cycles = 0;
        let sub_dim = split.m_vertices.len().max(split.n_vertices.len()).max(2) + 2;
        if sub_dim > substrate.crossbar_dim {
            return Err(AnalogError::CrossbarTooSmall {
                required: sub_dim,
                available: substrate.crossbar_dim,
            });
        }
        let mut xbar = Crossbar::new(substrate, sub_dim)?;

        for it in 0..self.opts.max_iterations {
            iterations = it + 1;
            let step = (self.opts.initial_step * scale as f64 / (1.0 + it as f64 / 8.0))
                .max(1.0)
                .round() as i64;

            let side_m = solve_subproblem(g, &split.m_vertices, s, t, &lambda, scale, 1)?;
            let side_n = solve_subproblem(g, &split.n_vertices, s, t, &lambda, scale, -1)?;
            // Account for the substrate reconfiguration of both solves.
            for verts in [&split.m_vertices, &split.n_vertices] {
                let sub = induced_subgraph(g, verts, s, t, &lambda, scale, 1)?;
                let rep = xbar.program(&sub)?;
                programming_cycles += rep.cycles;
            }

            // Consensus check + subgradient step on the overlap.
            let mut disagreements = 0;
            for &v in &split.overlap {
                let xm = side_m[v] as i64; // 1 = source side
                let xn = side_n[v] as i64;
                if xm != xn {
                    disagreements += 1;
                    // λ pushes the copies together: if M says source-side
                    // but N says sink-side, raise the price of source-side.
                    lambda[v] += step * (xm - xn);
                }
            }

            // Evaluate the feasible labelling induced by majority/union.
            let mut side = vec![false; g.vertex_count()];
            for v in 0..g.vertex_count() {
                let in_m = split.m_vertices.binary_search(&v).is_ok();
                side[v] = if in_m { side_m[v] } else { side_n[v] };
            }
            side[s] = true;
            side[t] = false;
            let value = cut_capacity(g, &side);
            if value < best_cut {
                best_cut = value;
                best_side = side;
            }
            if disagreements == 0 {
                converged = true;
                break;
            }
        }

        Ok(DecompositionResult {
            cut_value: best_cut,
            source_side: best_side,
            iterations,
            converged,
            overlap_size: split.overlap.len(),
            programming_cycles,
        })
    }

    /// The overlap split a run of [`DualDecomposition::solve`] would use.
    pub fn split(&self, g: &FlowNetwork) -> OverlapSplit {
        overlap_partition(g)
    }
}

/// Capacity of the cut induced by a source-side labelling.
fn cut_capacity(g: &FlowNetwork, side: &[bool]) -> i64 {
    g.edges()
        .iter()
        .filter(|e| side[e.from] && !side[e.to])
        .map(|e| e.capacity)
        .sum()
}

/// Builds the λ-priced sub-instance over `verts` and returns its min-cut
/// source-side labelling lifted back to global vertex ids.
fn solve_subproblem(
    g: &FlowNetwork,
    verts: &[usize],
    s: usize,
    t: usize,
    lambda: &[i64],
    scale: i64,
    lambda_sign: i64,
) -> Result<Vec<bool>, AnalogError> {
    let sub = induced_subgraph(g, verts, s, t, lambda, scale, lambda_sign)?;
    let cut = min_cut(&sub);
    // Map local side back to global ids: local index k ↔ verts ordering
    // with s/t appended (see `induced_subgraph`).
    let mut side = vec![false; g.vertex_count()];
    for (k, &v) in verts.iter().enumerate() {
        side[v] = cut.source_side[k];
    }
    side[s] = true;
    side[t] = false;
    Ok(side)
}

/// Induced subgraph over `verts ∪ {s, t}` with capacities scaled by
/// `scale`; overlap prices `λ_v` become terminal edges: a positive price
/// (for `lambda_sign = +1`) penalizes putting `v` on the source side by
/// adding a `v → t` edge of weight `λ_v` (and symmetrically an `s → v`
/// edge for negative effective price).
fn induced_subgraph(
    g: &FlowNetwork,
    verts: &[usize],
    s: usize,
    t: usize,
    lambda: &[i64],
    scale: i64,
    lambda_sign: i64,
) -> Result<FlowNetwork, AnalogError> {
    // Local ids: verts in order; s and t appended (if not already inside).
    let mut local = std::collections::HashMap::new();
    for (k, &v) in verts.iter().enumerate() {
        local.insert(v, k);
    }
    let mut n = verts.len();
    let s_local = *local.entry(s).or_insert_with(|| {
        let k = n;
        n += 1;
        k
    });
    let t_local = *local.entry(t).or_insert_with(|| {
        let k = n;
        n += 1;
        k
    });
    if s_local == t_local {
        return Err(AnalogError::InvalidConfig {
            what: "degenerate split: s == t locally".to_owned(),
        });
    }
    let mut sub = FlowNetwork::new(n.max(2), s_local, t_local)?;
    for e in g.edges() {
        if let (Some(&a), Some(&b)) = (local.get(&e.from), local.get(&e.to)) {
            if a != b {
                sub.add_edge(a, b, e.capacity * scale)?;
            }
        }
    }
    for &v in verts {
        if v == s || v == t {
            continue;
        }
        let price = lambda_sign * lambda[v];
        let lv = local[&v];
        if price > 0 {
            sub.add_edge(lv, t_local, price)?;
        } else if price < 0 {
            sub.add_edge(s_local, lv, -price)?;
        }
    }
    // Guarantee solvability even if the split disconnected s from t
    // locally (a capacity-1 backstop that cannot change the optimum by
    // more than 1/scale in original units).
    if !sub.sink_reachable() {
        sub.add_edge(s_local, t_local, 1)?;
    }
    Ok(sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohmflow_graph::generators;
    use ohmflow_graph::rmat::RmatConfig;

    fn exact(g: &FlowNetwork) -> i64 {
        min_cut(g).capacity
    }

    #[test]
    fn decomposition_is_exact_on_bridged_cliques() {
        // Two dense blobs joined by one bottleneck edge: the split puts
        // the bridge in the overlap and consensus is immediate.
        let mut g = FlowNetwork::new(12, 0, 11).unwrap();
        for base in [0usize, 6] {
            for i in base..base + 6 {
                for j in base..base + 6 {
                    if i != j {
                        g.add_edge(i, j, 3).unwrap();
                    }
                }
            }
        }
        g.add_edge(2, 8, 2).unwrap();
        let d = DualDecomposition::new(DecomposeOptions::default());
        let r = d.solve(&g, &SubstrateParams::table1()).unwrap();
        assert!(r.cut_value >= exact(&g), "cut is an upper bound");
        assert_eq!(r.cut_value, exact(&g), "bridge instance must be exact");
        assert!(r.programming_cycles > 0);
    }

    #[test]
    fn decomposition_bounds_hold_on_rmat() {
        for seed in 0..4 {
            let g = RmatConfig::sparse(40, 200 + seed).generate().unwrap();
            let d = DualDecomposition::new(DecomposeOptions::default());
            let r = d.solve(&g, &SubstrateParams::table1()).unwrap();
            let opt = exact(&g);
            assert!(
                r.cut_value >= opt,
                "seed {seed}: feasible cut {} below optimum {opt}",
                r.cut_value
            );
            // The consensus cut should be within 2x on these small graphs.
            assert!(
                r.cut_value <= 2 * opt.max(1),
                "seed {seed}: cut {} too loose vs {opt}",
                r.cut_value
            );
        }
    }

    #[test]
    fn path_decomposition_is_exact() {
        let g = generators::path(&[7, 3, 9, 5]).unwrap();
        let d = DualDecomposition::new(DecomposeOptions::default());
        let r = d.solve(&g, &SubstrateParams::table1()).unwrap();
        assert_eq!(r.cut_value, 3);
    }

    #[test]
    fn substrate_too_small_is_reported() {
        let g = generators::fig5a();
        let mut params = SubstrateParams::table1();
        params.crossbar_dim = 2;
        let d = DualDecomposition::new(DecomposeOptions::default());
        assert!(matches!(
            d.solve(&g, &params),
            Err(AnalogError::CrossbarTooSmall { .. })
        ));
    }
}
