//! §6.2 clustered island-style architectures.
//!
//! A monolithic `n × n` crossbar wastes area on sparse graphs (`O(n²)`
//! cells for `O(n)` edges). The clustered alternative groups mesh-based
//! *processing islands* behind a routing network, FPGA-style: highly
//! connected subgraphs map into islands, sparse inter-cluster edges use
//! the routing fabric. Two topologies are modelled — the 1-D bus of
//! Fig. 11a (cheap, routing-limited) and the 2-D switch-box grid of
//! Fig. 11b (flexible, costlier).

use ohmflow_graph::partition::partition_bfs;
use ohmflow_graph::FlowNetwork;

use crate::AnalogError;

/// Routing topology of the clustered architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingTopology {
    /// Fig. 11a: islands on a shared 1-D channel; every inter-island edge
    /// consumes one track of the single channel.
    OneDimensional {
        /// Total tracks in the channel.
        channel_tracks: usize,
    },
    /// Fig. 11b: islands on a `rows × cols` grid with switch boxes;
    /// inter-island edges are Manhattan-routed and consume one track per
    /// channel segment they traverse.
    TwoDimensional {
        /// Island-grid rows.
        rows: usize,
        /// Island-grid columns.
        cols: usize,
        /// Tracks per channel segment.
        tracks_per_segment: usize,
    },
}

/// A clustered substrate: `islands` mesh-based islands, each able to host
/// up to `island_vertices` graph vertices, plus a routing fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredArchitecture {
    /// Number of islands.
    pub islands: usize,
    /// Per-island mesh side (vertices an island can host).
    pub island_vertices: usize,
    /// Routing topology.
    pub topology: RoutingTopology,
}

/// Result of mapping a graph onto a clustered architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Island assignment per vertex.
    pub island_of: Vec<usize>,
    /// Inter-island edges (graph edge indices).
    pub routed_edges: Vec<usize>,
    /// Peak channel-track usage (1-D: total; 2-D: worst segment).
    pub peak_track_usage: usize,
    /// Crossbar cells used inside islands (Σ per-island `k²` for `k`
    /// hosted vertices).
    pub island_cells_used: usize,
    /// Utilization of island cells by intra-island edges.
    pub island_utilization: f64,
}

impl ClusteredArchitecture {
    /// A 1-D architecture (Fig. 11a).
    pub fn one_dimensional(islands: usize, island_vertices: usize, channel_tracks: usize) -> Self {
        ClusteredArchitecture {
            islands,
            island_vertices,
            topology: RoutingTopology::OneDimensional { channel_tracks },
        }
    }

    /// A 2-D architecture (Fig. 11b) with `rows × cols` islands.
    pub fn two_dimensional(
        rows: usize,
        cols: usize,
        island_vertices: usize,
        tracks_per_segment: usize,
    ) -> Self {
        ClusteredArchitecture {
            islands: rows * cols,
            island_vertices,
            topology: RoutingTopology::TwoDimensional {
                rows,
                cols,
                tracks_per_segment,
            },
        }
    }

    /// Total vertex capacity.
    pub fn vertex_capacity(&self) -> usize {
        self.islands * self.island_vertices
    }

    /// Total crossbar cells across islands — compare against the `n²` of a
    /// monolithic crossbar covering the same vertex count.
    pub fn total_island_cells(&self) -> usize {
        self.islands * self.island_vertices * self.island_vertices
    }

    /// Maps `g` onto the architecture: partitions the vertices into
    /// islands (BFS + refinement, §6.2's "highly connected subgraphs map
    /// to separate islands"), checks island capacity, and routes
    /// inter-island edges through the fabric.
    ///
    /// # Errors
    ///
    /// [`AnalogError::CrossbarTooSmall`] when the graph exceeds the total
    /// vertex capacity, an island overflows, or routing runs out of
    /// tracks.
    pub fn map_graph(&self, g: &FlowNetwork) -> Result<Mapping, AnalogError> {
        if g.vertex_count() > self.vertex_capacity() {
            return Err(AnalogError::CrossbarTooSmall {
                required: g.vertex_count(),
                available: self.vertex_capacity(),
            });
        }
        let part = partition_bfs(g, self.islands.min(g.vertex_count()).max(1));
        let sizes = part.part_sizes();
        if let Some((island, &size)) = sizes
            .iter()
            .enumerate()
            .find(|&(_, &s)| s > self.island_vertices)
        {
            let _ = island;
            return Err(AnalogError::CrossbarTooSmall {
                required: size,
                available: self.island_vertices,
            });
        }

        // Routing.
        let mut routed_edges = Vec::new();
        let mut intra_per_island = vec![0usize; self.islands];
        for (k, e) in g.edges().iter().enumerate() {
            let (pa, pb) = (part.assignment[e.from], part.assignment[e.to]);
            if pa == pb {
                intra_per_island[pa] += 1;
            } else {
                routed_edges.push(k);
            }
        }
        let peak_track_usage = match self.topology {
            RoutingTopology::OneDimensional { channel_tracks } => {
                let used = routed_edges.len();
                if used > channel_tracks {
                    return Err(AnalogError::CrossbarTooSmall {
                        required: used,
                        available: channel_tracks,
                    });
                }
                used
            }
            RoutingTopology::TwoDimensional {
                rows,
                cols,
                tracks_per_segment,
            } => {
                // Manhattan routing: count per horizontal/vertical segment.
                let pos = |island: usize| (island / cols, island % cols);
                let mut h_seg = vec![vec![0usize; cols.saturating_sub(1)]; rows];
                let mut v_seg = vec![vec![0usize; cols]; rows.saturating_sub(1)];
                for &k in &routed_edges {
                    let e = g.edges()[k];
                    let (ra, ca) = pos(part.assignment[e.from]);
                    let (rb, cb) = pos(part.assignment[e.to]);
                    // Route horizontally at row ra, then vertically at col cb.
                    let (c0, c1) = (ca.min(cb), ca.max(cb));
                    for seg in &mut h_seg[ra][c0..c1] {
                        *seg += 1;
                    }
                    let (r0, r1) = (ra.min(rb), ra.max(rb));
                    for row in &mut v_seg[r0..r1] {
                        row[cb] += 1;
                    }
                }
                let peak = h_seg
                    .iter()
                    .flatten()
                    .chain(v_seg.iter().flatten())
                    .copied()
                    .max()
                    .unwrap_or(0);
                if peak > tracks_per_segment {
                    return Err(AnalogError::CrossbarTooSmall {
                        required: peak,
                        available: tracks_per_segment,
                    });
                }
                peak
            }
        };

        let island_cells_used: usize = sizes.iter().map(|&s| s * s).sum();
        let intra_edges: usize = intra_per_island.iter().sum();
        Ok(Mapping {
            island_of: part.assignment,
            routed_edges,
            peak_track_usage,
            island_cells_used,
            island_utilization: if island_cells_used == 0 {
                0.0
            } else {
                intra_edges as f64 / island_cells_used as f64
            },
        })
    }

    /// Area advantage over a monolithic crossbar hosting the same graph:
    /// `n² / (island cells + routing tracks)` — the §6.2 scalability
    /// argument, > 1 when clustering wins.
    pub fn area_advantage(&self, g: &FlowNetwork, mapping: &Mapping) -> f64 {
        let mono = g.vertex_count() * g.vertex_count();
        let clustered = mapping.island_cells_used + mapping.routed_edges.len();
        mono as f64 / clustered.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohmflow_graph::generators;
    use ohmflow_graph::rmat::RmatConfig;

    #[test]
    fn sparse_graph_maps_with_area_advantage() {
        let g = RmatConfig::sparse(96, 4).generate().unwrap();
        let arch = ClusteredArchitecture::one_dimensional(8, 24, 2_000);
        let m = arch.map_graph(&g).unwrap();
        assert_eq!(m.island_of.len(), 96);
        let adv = arch.area_advantage(&g, &m);
        assert!(adv > 1.0, "clustering should beat monolithic: {adv}");
    }

    #[test]
    fn capacity_overflow_detected() {
        let g = RmatConfig::sparse(96, 4).generate().unwrap();
        let arch = ClusteredArchitecture::one_dimensional(2, 10, 1_000);
        assert!(matches!(
            arch.map_graph(&g),
            Err(AnalogError::CrossbarTooSmall { .. })
        ));
    }

    #[test]
    fn routing_overflow_detected_on_1d() {
        let g = RmatConfig::dense(48, 7).generate().unwrap();
        // Plenty of vertex room but almost no routing tracks.
        let arch = ClusteredArchitecture::one_dimensional(6, 48, 1);
        assert!(matches!(
            arch.map_graph(&g),
            Err(AnalogError::CrossbarTooSmall { .. })
        ));
    }

    #[test]
    fn two_dimensional_routing_counts_segments() {
        let g = RmatConfig::sparse(64, 9).generate().unwrap();
        let arch = ClusteredArchitecture::two_dimensional(2, 2, 32, 10_000);
        let m = arch.map_graph(&g).unwrap();
        // Peak usage must be bounded by total routed edges.
        assert!(m.peak_track_usage <= m.routed_edges.len());
    }

    #[test]
    fn one_d_is_easier_to_map_but_less_scalable() {
        // §6.2's hypothesis, made measurable: with equal track budgets,
        // the 2-D fabric sustains denser inter-island traffic because its
        // peak per-segment load is lower than the 1-D total.
        let g = RmatConfig::dense(64, 11).generate().unwrap();
        let d1 = ClusteredArchitecture::one_dimensional(4, 32, usize::MAX);
        let d2 = ClusteredArchitecture::two_dimensional(2, 2, 32, usize::MAX);
        let m1 = d1.map_graph(&g).unwrap();
        let m2 = d2.map_graph(&g).unwrap();
        assert!(
            m2.peak_track_usage <= m1.peak_track_usage,
            "2-D peak {} vs 1-D total {}",
            m2.peak_track_usage,
            m1.peak_track_usage
        );
    }

    #[test]
    fn fig5a_fits_one_island() {
        let g = generators::fig5a();
        let arch = ClusteredArchitecture::one_dimensional(1, 8, 0);
        let m = arch.map_graph(&g).unwrap();
        assert!(m.routed_edges.is_empty());
        assert_eq!(m.peak_track_usage, 0);
        assert!(m.island_utilization > 0.0);
    }
}
