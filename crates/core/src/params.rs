//! Table 1 design parameters of the max-flow computing substrate.

use ohmflow_circuit::{DiodeModel, MemristorModel, OpAmpModel};

/// Design parameters of the substrate (Table 1 of the paper).
///
/// | Parameter | Table 1 value |
/// |---|---|
/// | Memristor LRS resistance | 10 kΩ |
/// | Memristor HRS resistance | 1 MΩ |
/// | Objective voltage `V_flow` | 3 V |
/// | Op-amp open-loop gain | 1×10⁴ |
/// | Op-amp gain–bandwidth product | 10–50 GHz |
/// | Crossbar rows × columns | 1000 × 1000 |
/// | Voltage levels `N` | 20 |
///
/// plus the §5.1 evaluation's 20 fF parasitic capacitance per circuit net.
///
/// # Example
///
/// ```
/// use ohmflow::SubstrateParams;
///
/// let p = SubstrateParams::table1();
/// assert_eq!(p.r_unit, 10e3);       // LRS memristance doubles as the unit resistor
/// assert_eq!(p.v_flow, 3.0);
/// assert_eq!(p.voltage_levels, 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SubstrateParams {
    /// The unit resistance `r` (Ω): every positive resistor in the
    /// substrate is an LRS memristor of this value.
    pub r_unit: f64,
    /// Memristor model (LRS/HRS/threshold).
    pub memristor: MemristorModel,
    /// Objective drive voltage `V_flow` (V).
    pub v_flow: f64,
    /// Supply voltage `V_dd` (V): quantized capacity levels span `[0, V_dd]`.
    pub v_dd: f64,
    /// Number of quantization voltage levels `N`.
    pub voltage_levels: u32,
    /// Op-amp macromodel (gain, GBW, rails).
    pub opamp: OpAmpModel,
    /// Clamp-diode model.
    pub diode: DiodeModel,
    /// Crossbar side length (rows = columns).
    pub crossbar_dim: usize,
    /// Parasitic capacitance added to every circuit net during transient
    /// analysis (farads). §5.1 uses 20 fF.
    pub parasitic_cap: f64,
}

impl SubstrateParams {
    /// The paper's Table 1 configuration with GBW = 10 GHz.
    pub fn table1() -> Self {
        SubstrateParams {
            r_unit: 10e3,
            memristor: MemristorModel::table1(),
            v_flow: 3.0,
            v_dd: 1.0,
            voltage_levels: 20,
            opamp: OpAmpModel::table1(),
            diode: DiodeModel::ideal(),
            crossbar_dim: 1000,
            parasitic_cap: 20e-15,
        }
    }

    /// Table 1 with the op-amp GBW overridden (the paper sweeps 10–50 GHz).
    pub fn with_gbw(gbw_hz: f64) -> Self {
        let mut p = Self::table1();
        p.opamp.gbw_hz = gbw_hz;
        p
    }

    /// The conservation widget's negation resistance `−r/2` (Ω).
    pub fn negation_resistance(&self) -> f64 {
        -self.r_unit / 2.0
    }

    /// The conservation widget's star resistance `−R = −r/N` for a vertex
    /// with `n_incident` incident edges (Ω).
    ///
    /// # Panics
    ///
    /// Panics if `n_incident == 0` (such a vertex needs no widget).
    pub fn star_resistance(&self, n_incident: usize) -> f64 {
        assert!(n_incident > 0, "conservation widget needs incident edges");
        -self.r_unit / n_incident as f64
    }
}

impl Default for SubstrateParams {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let p = SubstrateParams::table1();
        assert_eq!(p.memristor.r_lrs, 10e3);
        assert_eq!(p.memristor.r_hrs, 1e6);
        assert_eq!(p.opamp.gain, 1e4);
        assert_eq!(p.opamp.gbw_hz, 10e9);
        assert_eq!(p.crossbar_dim, 1000);
        assert_eq!(p.parasitic_cap, 20e-15);
    }

    #[test]
    fn derived_resistances() {
        let p = SubstrateParams::table1();
        assert_eq!(p.negation_resistance(), -5e3);
        assert_eq!(p.star_resistance(4), -2.5e3);
        assert_eq!(p.star_resistance(1), -10e3);
    }

    #[test]
    fn gbw_override() {
        let p = SubstrateParams::with_gbw(50e9);
        assert_eq!(p.opamp.gbw_hz, 50e9);
        assert_eq!(p.opamp.gain, 1e4, "gain untouched");
    }

    #[test]
    #[should_panic(expected = "incident")]
    fn star_resistance_zero_incident_panics() {
        let _ = SubstrateParams::table1().star_resistance(0);
    }
}
