//! §4.2/§4.3 non-ideality injection: resistor process variation (absolute
//! vs matched-ratio), parasitic series resistance, finite op-amp gain, and
//! diode turn-on voltage.
//!
//! The §4.3.1 insight is that the solution depends only on resistance
//! *ratios*: an absolute lot-to-lot spread of ±20–30 % is harmless as long
//! as on-die matching holds ratios to ±0.1–1 %. [`VariationModel`]
//! separates the two effects so the benchmark suite can demonstrate
//! exactly that.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ohmflow_circuit::Element;

use crate::builder::SubstrateCircuit;

/// Process-variation model applied to every resistor of a built substrate
/// circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Lot-level absolute tolerance: one global multiplicative factor drawn
    /// from `1 ± absolute_tolerance` and applied to *every* resistor
    /// (§4.3.1: ±20–30 % in practice; provably harmless).
    pub absolute_tolerance: f64,
    /// Per-resistor mismatch: each resistor additionally drawn from
    /// `1 ± matching_tolerance` (±0.1–1 % with careful layout).
    pub matching_tolerance: f64,
    /// Parasitic series resistance added to every resistor (Ω) — wire and
    /// contact resistance, the residual §4.3.2 tuning targets.
    pub parasitic_series: f64,
    /// RNG seed.
    pub seed: u64,
}

impl VariationModel {
    /// The §4.3.1 "well-matched layout" corner: 25 % absolute, 0.1 %
    /// matching, no parasitics.
    pub fn matched(seed: u64) -> Self {
        VariationModel {
            absolute_tolerance: 0.25,
            matching_tolerance: 0.001,
            parasitic_series: 0.0,
            seed,
        }
    }

    /// A poorly matched design: every resistor independently ±3 %.
    ///
    /// (±20–30 % *absolute* spread is realistic but is modelled by
    /// `absolute_tolerance`; per-resistor mismatch beyond a few percent
    /// destroys the conservation identities outright and pushes the
    /// substrate into clamp limit-cycles — the regime the §4.3 matching and
    /// tuning techniques exist to prevent.)
    pub fn unmatched(seed: u64) -> Self {
        VariationModel {
            absolute_tolerance: 0.0,
            matching_tolerance: 0.03,
            parasitic_series: 0.0,
            seed,
        }
    }

    /// Applies the model in place to every resistor of `sc`, returning the
    /// number of perturbed elements.
    ///
    /// Uniform distributions are used (worst-case corners matter more than
    /// the distribution shape for a tolerance study).
    pub fn apply(&self, sc: &mut SubstrateCircuit) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let global = 1.0 + rng.gen_range(-self.absolute_tolerance..=self.absolute_tolerance);
        let ckt = sc.circuit_mut();
        let ids: Vec<_> = ckt
            .element_ids()
            .filter(|&id| matches!(ckt.element(id), Element::Resistor { .. }))
            .collect();
        let mut changed = 0;
        for id in ids {
            let (r0, sign) = match ckt.element(id) {
                Element::Resistor { resistance, .. } => (resistance.abs(), resistance.signum()),
                _ => continue,
            };
            let mismatch = 1.0 + rng.gen_range(-self.matching_tolerance..=self.matching_tolerance);
            // Parasitic series resistance always *adds* magnitude.
            let r_new = sign * (r0 * global * mismatch + self.parasitic_series);
            ckt.set_resistance(id, r_new)
                .expect("invariant: retune targets an id recorded at build time");
            changed += 1;
        }
        changed
    }
}

/// The §4.2 effective negative resistance under finite op-amp gain:
/// `R_eff = −(1 + (1/A)(R0/R_target)) · R_target`.
///
/// ```
/// let r_eff = ohmflow::nonideal::finite_gain_reff(5e3, 10e3, 1e4);
/// assert!((r_eff - (-5e3 * (1.0 + 2e-4))).abs() < 1e-9);
/// ```
pub fn finite_gain_reff(r_target: f64, r0: f64, gain: f64) -> f64 {
    -(1.0 + (r0 / r_target) / gain) * r_target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildOptions};
    use crate::solver::facade::{MaxFlowSolver, Problem, SolveOptions};
    use crate::SubstrateParams;
    use ohmflow_graph::generators;
    use ohmflow_maxflow::edmonds_karp;

    fn solve_with(model: Option<VariationModel>) -> f64 {
        let g = generators::fig5a();
        // Drive with *just enough* headroom (§2.3 saturation needs ~5×V_dd
        // on this instance): excess drive amplifies the coupling between
        // resistor mismatch and the constraint-widget internal nodes, a
        // trade-off the ablation bench quantifies. The relaxation transient
        // is used because mismatch-softened constraints can trap the
        // quasi-static complementarity iteration in a spurious all-clamped
        // state (see `AnalogMaxFlow::solve_built`).
        let mut cfg = SolveOptions::ideal();
        cfg.params.v_flow = 8.0;
        // Fixed window: heavily perturbed circuits can ring in a small
        // clamp limit-cycle forever; the end-of-window value is still the
        // meaningful solution-quality measurement.
        let tau = cfg.params.opamp.time_constant();
        cfg.mode = crate::solver::SolveMode::Transient {
            window: Some(60.0 * tau),
            dt: None,
        };
        cfg.settle_fraction = 0.01;
        let mut build_opts = BuildOptions::ideal();
        build_opts.drive = crate::builder::Drive::Step;
        let mut params = SubstrateParams::table1();
        params.v_flow = cfg.params.v_flow;
        let mut sc = build(&g, &params, &build_opts).unwrap();
        if let Some(m) = model {
            m.apply(&mut sc);
        }
        MaxFlowSolver::new(cfg)
            .solve_problem(Problem::Built {
                circuit: &sc,
                graph: &g,
            })
            .unwrap()
            .value
    }

    #[test]
    fn matched_variation_is_nearly_harmless() {
        let exact = edmonds_karp(&generators::fig5a()).value as f64;
        for seed in 0..5 {
            let v = solve_with(Some(VariationModel::matched(seed)));
            let rel = (v - exact).abs() / exact;
            assert!(rel < 0.05, "seed {seed}: value {v}, rel err {rel}");
        }
    }

    #[test]
    fn unmatched_variation_hurts_more_than_matched() {
        let exact = edmonds_karp(&generators::fig5a()).value as f64;
        let mut worst_matched = 0.0f64;
        let mut worst_unmatched = 0.0f64;
        for seed in 0..8 {
            let vm = solve_with(Some(VariationModel::matched(seed)));
            let vu = solve_with(Some(VariationModel::unmatched(seed)));
            worst_matched = worst_matched.max((vm - exact).abs() / exact);
            worst_unmatched = worst_unmatched.max((vu - exact).abs() / exact);
        }
        assert!(
            worst_unmatched > worst_matched,
            "unmatched {worst_unmatched} should exceed matched {worst_matched}"
        );
    }

    #[test]
    fn apply_touches_every_resistor() {
        let g = generators::fig5a();
        let params = SubstrateParams::table1();
        let mut sc = build(&g, &params, &BuildOptions::ideal()).unwrap();
        let n_resistors = sc
            .circuit()
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Resistor { .. }))
            .count();
        let touched = VariationModel::matched(1).apply(&mut sc);
        assert_eq!(touched, n_resistors);
    }

    #[test]
    fn finite_gain_formula() {
        // A → ∞ recovers the ideal value.
        assert!((finite_gain_reff(5e3, 10e3, 1e12) + 5e3).abs() < 1e-6);
        // Table 1 gain 1e4: within ±0.1 % as §4.2 claims.
        let r = finite_gain_reff(5e3, 5e3, 1e4);
        assert!(((-r - 5e3) / 5e3).abs() < 1e-3);
    }

    #[test]
    fn parasitic_series_shifts_solution() {
        let clean = solve_with(None);
        let mut m = VariationModel::matched(3);
        m.parasitic_series = 50.0; // 0.5 % of r — wire resistance
        let dirty = solve_with(Some(m));
        assert!(
            (dirty - clean).abs() > 1e-6,
            "parasitics must move the solution ({clean} vs {dirty})"
        );
    }
}
