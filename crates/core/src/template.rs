//! Topology-keyed substrate templates: amortizing the cold path across
//! same-graph solves.
//!
//! The paper's evaluation workloads — the Fig. 10 quantization/`N` sweeps,
//! the §4.3 variation-seed ablations, the §4.3.2 tuning iterations — solve
//! the **same graph topology** dozens to thousands of times with only
//! capacity or source *values* changed. Every solve used to repay the full
//! topology-dependent cold path: substrate construction, MNA structure
//! derivation, fill-reducing ordering and symbolic factorization.
//!
//! A [`SubstrateTemplate`] runs that cold path **once** per topology and
//! splits every later solve into a cheap value-only *instantiation*:
//!
//! * the circuit skeleton is built with one capacity-level source **per
//!   edge** (the `PerEdge` level layout) so the netlist *structure* is a
//!   pure function of the graph topology — any capacity assignment is a
//!   [`set_source_value`](ohmflow_circuit::Circuit::set_source_value)
//!   restamp away,
//! * the MNA structure, base-matrix sparsity and the symbolic + one
//!   numeric LU live in a shared [`DcTemplate`]; instances carry it by
//!   [`Arc`], and batch workers derive per-thread numeric factors from the
//!   shared symbolic plan. Those numeric refactorizations run under the
//!   linalg crate's `Auto` strategy: a single large instantiation replays
//!   its elimination levels across rayon workers, while instantiations
//!   issued *from inside* a batch worker stay serial (the batch already
//!   owns the cores — the nested-worker guard prevents oversubscription),
//! * the converged device states of previous solves are cached as a
//!   warm-start hint, which collapses the clamp-engagement cascade on
//!   sweep-shaped workloads (warm starts that fail to converge retry cold,
//!   so solvability is unchanged).
//!
//! [`AnalogMaxFlow`](crate::solver::AnalogMaxFlow) keeps a topology-keyed
//! cache of these templates and routes same-topology batches through them;
//! see `DESIGN.md` for the invalidation rules.

use std::sync::{Arc, Mutex};

use ohmflow_circuit::mna::DeviceState;
use ohmflow_circuit::{DcTemplate, SourceValue};
use ohmflow_graph::FlowNetwork;

use crate::builder::{
    build_with_layout, BuildOptions, CapacityMapping, LevelLayout, SubstrateCircuit,
};
use crate::params::SubstrateParams;
use crate::quantize::{ExactScaling, Quantizer};
use crate::AnalogError;

/// Structural identity of a max-flow instance: everything the substrate's
/// netlist *structure* depends on, and nothing it does not (capacities and
/// source values are excluded). Two graphs with equal keys can share one
/// [`SubstrateTemplate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateKey {
    /// Fingerprint of the fields below, computed once at construction.
    /// First field on purpose: the derived `PartialEq` compares it before
    /// the edge list, so cache probes against a *different* topology
    /// reject on one `u64` instead of walking the edges, and `Hash`
    /// (manual, below) writes only this — plan-cache hits stop re-hashing
    /// the whole edge list on every lookup.
    hash: u64,
    vertices: usize,
    source: usize,
    sink: usize,
    /// Edge list in id order — parallel edges are distinct widgets, so the
    /// full list (not a set) is the identity.
    edges: Vec<(u32, u32)>,
    /// The LU column ordering the template's symbolic factorization was
    /// built under. Part of the identity: a symbolic plan is only reusable
    /// under the ordering that produced it, so caches must never hand a
    /// min-degree-era template to an AMD+BTF solve (or vice versa).
    ordering: ohmflow_circuit::ColumnOrdering,
    /// The numeric precision of the template's stored factor values. Part
    /// of the identity for the same reason: an f32 value-array plan primed
    /// into an f64 solve (or vice versa) would silently change every
    /// cached refactorization's accuracy.
    precision: ohmflow_circuit::Precision,
}

impl TemplateKey {
    /// The key of `g` under the default column ordering.
    pub fn of(g: &FlowNetwork) -> Self {
        Self::with_ordering(g, ohmflow_circuit::ColumnOrdering::default())
    }

    /// The key of `g` under an explicit column ordering (what
    /// [`BuildOptions::lu_ordering`](crate::builder::BuildOptions) selects)
    /// and the default (f64) precision.
    pub fn with_ordering(g: &FlowNetwork, ordering: ohmflow_circuit::ColumnOrdering) -> Self {
        Self::with_lu(g, ordering, ohmflow_circuit::Precision::default())
    }

    /// The key of `g` under an explicit column ordering and numeric
    /// precision (what
    /// [`BuildOptions::lu_ordering`](crate::builder::BuildOptions) and
    /// [`BuildOptions::lu_precision`](crate::builder::BuildOptions)
    /// select).
    pub fn with_lu(
        g: &FlowNetwork,
        ordering: ohmflow_circuit::ColumnOrdering,
        precision: ohmflow_circuit::Precision,
    ) -> Self {
        use std::hash::{Hash as _, Hasher as _};
        let vertices = g.vertex_count();
        let source = g.source();
        let sink = g.sink();
        let edges: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .map(|e| (e.from as u32, e.to as u32))
            .collect();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        vertices.hash(&mut h);
        source.hash(&mut h);
        sink.hash(&mut h);
        edges.hash(&mut h);
        ordering.hash(&mut h);
        precision.hash(&mut h);
        TemplateKey {
            hash: h.finish(),
            vertices,
            source,
            sink,
            edges,
            ordering,
            precision,
        }
    }
}

/// Hashes only the cached fingerprint: the expensive edge-list traversal
/// happened once in [`TemplateKey::with_ordering`]. Consistent with the
/// derived `PartialEq` — equal keys have equal cached hashes because the
/// fingerprint is a pure function of the compared fields.
impl std::hash::Hash for TemplateKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// A reusable substrate for one graph topology: circuit skeleton, shared
/// cold-path artifacts and warm-start state. See the module docs.
#[derive(Debug)]
pub struct SubstrateTemplate {
    key: TemplateKey,
    params: SubstrateParams,
    opts: BuildOptions,
    /// Skeleton with per-edge level sources; instances are value-restamped
    /// clones of it.
    skeleton: SubstrateCircuit,
    /// Per-edge level-source ids (`None` for grounded circulation edges).
    level_sources: Vec<Option<ohmflow_circuit::ElementId>>,
    /// Shared MNA structure + base sparsity + symbolic/numeric LU.
    dc: Arc<DcTemplate>,
    /// Converged device states of the most recent solve, keyed by a
    /// fingerprint of the instance *values* (clamp voltages + drive). A
    /// warm start is only sound when the instance is value-identical: the
    /// complementarity fixed point reached from the all-off start is the
    /// physical one, and warm-starting a *different* value assignment can
    /// converge to a different (spurious) equilibrium — so the hint is
    /// never applied across value changes.
    warm: Mutex<Option<(u64, Vec<DeviceState>)>>,
}

/// Fingerprint of everything the warm-start fixed point depends on beyond
/// topology: the values actually stamped into the quasi-static solve — the
/// DC value of every independent source (capacity levels, the drive, and
/// any source a caller restamped through `circuit_mut`) and every
/// resistive element value (so a variation-perturbed instance never
/// inherits an unperturbed instance's clamp states). Pure readout scales
/// (`volts_per_flow`) are deliberately excluded — capacity vectors that map
/// to the same voltages share their fixed point.
pub(crate) fn value_fingerprint(sc: &SubstrateCircuit) -> u64 {
    use ohmflow_circuit::Element;
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for e in sc.circuit().elements() {
        match e {
            Element::VoltageSource { value, .. } | Element::CurrentSource { value, .. } => {
                value.dc_value().to_bits().hash(&mut h);
            }
            Element::Resistor { resistance, .. } => resistance.to_bits().hash(&mut h),
            Element::NegativeResistorDyn { magnitude, .. } => magnitude.to_bits().hash(&mut h),
            Element::Memristor { .. } => {
                if let Some(r) = e.memristance() {
                    r.to_bits().hash(&mut h);
                }
            }
            _ => {}
        }
    }
    h.finish()
}

impl SubstrateTemplate {
    /// Runs the full cold path for `g`'s topology: builds the per-edge
    /// skeleton (using `g`'s capacities as the initial values) and derives
    /// the shared structure and factorization.
    ///
    /// # Errors
    ///
    /// Build failures propagate; circuit-level failures if the base
    /// operating-point matrix cannot be factored.
    pub fn new(
        g: &FlowNetwork,
        params: &SubstrateParams,
        opts: &BuildOptions,
    ) -> Result<Self, AnalogError> {
        Self::with_lu_options(g, params, opts, opts.lu_options())
    }

    /// [`SubstrateTemplate::new`] with the full factorization options made
    /// explicit — how the facade threads `SolveOptions::lu` (pivoting
    /// thresholds included, not just the ordering) into the plan's
    /// symbolic work. `lu.ordering` wins over `opts.lu_ordering` (the
    /// facade's precedence rule): the stored build options and the
    /// topology key are normalized to it.
    ///
    /// # Errors
    ///
    /// Same as [`SubstrateTemplate::new`].
    pub fn with_lu_options(
        g: &FlowNetwork,
        params: &SubstrateParams,
        opts: &BuildOptions,
        lu: ohmflow_circuit::LuOptions,
    ) -> Result<Self, AnalogError> {
        let mut opts = *opts;
        opts.lu_ordering = lu.ordering;
        opts.lu_precision = lu.precision;
        let (skeleton, level_sources) = build_with_layout(g, params, &opts, LevelLayout::PerEdge)?;
        let dc =
            Arc::new(DcTemplate::with_options(skeleton.circuit(), lu).map_err(AnalogError::from)?);
        Ok(SubstrateTemplate {
            key: TemplateKey::with_lu(g, lu.ordering, lu.precision),
            params: params.clone(),
            opts,
            skeleton,
            level_sources,
            dc,
            warm: Mutex::new(None),
        })
    }

    /// The topology key this template serves.
    pub fn key(&self) -> &TemplateKey {
        &self.key
    }

    /// The shared circuit-level cold-path artifacts.
    pub fn dc_template(&self) -> &Arc<DcTemplate> {
        &self.dc
    }

    /// The build options the skeleton was constructed with.
    pub fn build_options(&self) -> &BuildOptions {
        &self.opts
    }

    /// Instantiates the template for `g`'s capacities (the template's own
    /// capacity mapping). `g` must have the same topology as the template
    /// was built from; capacities are free.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidConfig`] on a topology mismatch.
    pub fn instantiate(&self, g: &FlowNetwork) -> Result<SubstrateCircuit, AnalogError> {
        self.instantiate_mapped(g, self.opts.capacity_mapping)
    }

    /// [`SubstrateTemplate::instantiate`] with an explicit capacity→voltage
    /// mapping override — the Fig. 10 `N`-sweep: the same topology is
    /// re-instantiated per quantization level count, all value-only.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidConfig`] on a topology mismatch.
    pub fn instantiate_mapped(
        &self,
        g: &FlowNetwork,
        mapping: CapacityMapping,
    ) -> Result<SubstrateCircuit, AnalogError> {
        if TemplateKey::with_lu(g, self.opts.lu_ordering, self.opts.lu_precision) != self.key {
            return Err(AnalogError::InvalidConfig {
                what: "template instantiated with a different graph topology".to_owned(),
            });
        }
        // Value-only work: map capacities to clamp voltages and restamp the
        // per-edge level sources of a skeleton clone.
        let c_max = g.max_capacity() as f64;
        let exact = ExactScaling::new(self.params.v_dd, c_max);
        let quantizer = match mapping {
            CapacityMapping::Exact => None,
            CapacityMapping::Quantized { levels } => {
                Some(Quantizer::new(levels, self.params.v_dd, c_max))
            }
        };
        let clamp_volts: Vec<f64> = g
            .edges()
            .iter()
            .map(|e| match &quantizer {
                None => exact.to_volts(e.capacity as f64),
                Some(q) => q.quantize(e.capacity as f64),
            })
            .collect();

        let mut sc = self.skeleton.clone();
        let v_on = self.params.diode.v_on;
        for (k, src) in self.level_sources.iter().enumerate() {
            if let Some(id) = src {
                sc.circuit_mut()
                    .set_source_value(*id, SourceValue::dc(clamp_volts[k] - v_on))
                    .expect("level source id");
            }
        }
        sc.set_capacity_values(clamp_volts, self.params.v_dd / c_max);
        sc.attach_dc_template(Arc::clone(&self.dc));
        Ok(sc)
    }

    /// The warm-start hint: converged device states of the last solve with
    /// the **same instance values** (fingerprint match), if any.
    pub(crate) fn warm_states_for(&self, fingerprint: u64) -> Option<Vec<DeviceState>> {
        self.warm
            .lock()
            .expect("warm-state lock")
            .as_ref()
            .filter(|(fp, _)| *fp == fingerprint)
            .map(|(_, s)| s.clone())
    }

    /// Records converged device states as the warm start for future solves
    /// of the same value assignment.
    pub(crate) fn store_warm_states(&self, fingerprint: u64, states: &[DeviceState]) {
        *self.warm.lock().expect("warm-state lock") = Some((fingerprint, states.to_vec()));
    }
}

/// `true` if the circuit of every member has the same structure, so one
/// [`DcTemplate`] derived from the first member serves the whole batch
/// (the facade's `solve_many` grouping check for built members).
pub(crate) fn uniform_structure(scs: &[&SubstrateCircuit]) -> bool {
    let Some(first) = scs.first() else {
        return false;
    };
    let c0 = first.circuit();
    scs[1..].iter().all(|sc| {
        let c = sc.circuit();
        c.node_count() == c0.node_count() && c.element_count() == c0.element_count()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use ohmflow_graph::generators;

    fn params_and_opts() -> (SubstrateParams, BuildOptions) {
        let mut params = SubstrateParams::table1();
        params.v_flow = 50.0 * params.v_dd;
        (params, BuildOptions::ideal())
    }

    #[test]
    fn template_key_distinguishes_topologies() {
        let a = generators::fig5a();
        // fig5a and fig15a share a 5-vertex diamond topology (they differ
        // only in capacities) — the key treats them as the same substrate,
        // while a genuinely different shape must differ.
        assert_eq!(
            TemplateKey::of(&a),
            TemplateKey::of(&generators::fig15a(10))
        );
        let b = generators::path(&[5, 2, 9]).unwrap();
        assert_ne!(TemplateKey::of(&a), TemplateKey::of(&b));
        // Same topology, different capacities: same key.
        let c = a.scaled_capacities(2).unwrap();
        assert_eq!(TemplateKey::of(&a), TemplateKey::of(&c));
    }

    #[test]
    fn template_key_separates_orderings() {
        use ohmflow_circuit::ColumnOrdering;
        // A symbolic plan is only valid under the ordering that built it:
        // the same topology under different orderings must never share a
        // cache slot, while the default-ordering key stays stable.
        let a = generators::fig5a();
        assert_ne!(
            TemplateKey::of(&a),
            TemplateKey::with_ordering(&a, ColumnOrdering::MinDegree)
        );
        assert_eq!(
            TemplateKey::of(&a),
            TemplateKey::with_ordering(&a, ColumnOrdering::default())
        );
    }

    #[test]
    fn instantiate_rejects_topology_mismatch() {
        let (params, opts) = params_and_opts();
        let tpl = SubstrateTemplate::new(&generators::fig5a(), &params, &opts).unwrap();
        let other = generators::path(&[5, 2, 9]).unwrap();
        assert!(matches!(
            tpl.instantiate(&other),
            Err(AnalogError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn instantiate_restamps_clamp_values() {
        let (params, opts) = params_and_opts();
        let g = generators::fig5a();
        let tpl = SubstrateTemplate::new(&g, &params, &opts).unwrap();
        let g2 = g.scaled_capacities(3).unwrap();
        let inst = tpl.instantiate(&g2).unwrap();
        let fresh = build(&g2, &params, &opts).unwrap();
        // Clamp voltages and readout scale must match a fresh build exactly
        // (identical value pipeline, only the source layout differs).
        assert_eq!(inst.volts_per_flow(), fresh.volts_per_flow());
        for k in 0..g2.edge_count() {
            assert_eq!(inst.clamp_volts(k), fresh.clamp_volts(k), "edge {k}");
        }
        assert!(inst.dc_template().is_some());
    }
}
