//! Topology-keyed substrate templates: amortizing the cold path across
//! same-graph solves.
//!
//! The paper's evaluation workloads — the Fig. 10 quantization/`N` sweeps,
//! the §4.3 variation-seed ablations, the §4.3.2 tuning iterations — solve
//! the **same graph topology** dozens to thousands of times with only
//! capacity or source *values* changed. Every solve used to repay the full
//! topology-dependent cold path: substrate construction, MNA structure
//! derivation, fill-reducing ordering and symbolic factorization.
//!
//! A [`SubstrateTemplate`] runs that cold path **once** per topology and
//! splits every later solve into a cheap value-only *instantiation*:
//!
//! * the circuit skeleton is built with one capacity-level source **per
//!   edge** (the `PerEdge` level layout) so the netlist *structure* is a
//!   pure function of the graph topology — any capacity assignment is a
//!   [`set_source_value`](ohmflow_circuit::Circuit::set_source_value)
//!   restamp away,
//! * the MNA structure, base-matrix sparsity and the symbolic + one
//!   numeric LU live in a shared [`DcTemplate`]; instances carry it by
//!   [`Arc`], and batch workers derive per-thread numeric factors from the
//!   shared symbolic plan. Those numeric refactorizations run under the
//!   linalg crate's `Auto` strategy: a single large instantiation replays
//!   its elimination levels across rayon workers, while instantiations
//!   issued *from inside* a batch worker stay serial (the batch already
//!   owns the cores — the nested-worker guard prevents oversubscription),
//! * the converged device states of previous solves are cached as a
//!   warm-start hint, which collapses the clamp-engagement cascade on
//!   sweep-shaped workloads (warm starts that fail to converge retry cold,
//!   so solvability is unchanged).
//!
//! [`AnalogMaxFlow`](crate::solver::AnalogMaxFlow) keeps a topology-keyed
//! cache of these templates and routes same-topology batches through them;
//! see `DESIGN.md` for the invalidation rules.

use std::sync::{Arc, Mutex};

use ohmflow_circuit::mna::DeviceState;
use ohmflow_circuit::{DcTemplate, SourceValue};
use ohmflow_graph::FlowNetwork;

use crate::builder::{
    build_with_layout, BuildOptions, CapacityMapping, LevelLayout, SubstrateCircuit,
};
use crate::params::SubstrateParams;
use crate::quantize::{ExactScaling, Quantizer};
use crate::AnalogError;

/// Seeded streaming hasher for topology and value fingerprints: an
/// FxHash-style multiply–rotate mixer over `u64` words with a
/// splitmix64-style finalizer. One inlined `mix` per word replaces the
/// per-edge `Hash`-trait dispatch into SipHash that used to dominate the
/// plan-cache hit path (BENCH_PR5.json, `plan_cache_hit`); the bulk edge
/// loop in [`TemplateKey::fingerprint`] additionally interleaves the mix
/// across four independent lanes (folded back into this state at the
/// end), because a single mixer chain is latency-bound at ~5 cycles per
/// edge while the multiplier unit could retire one mix per cycle. Not
/// collision-resistant against adversaries — every cache probe that
/// matches on the fingerprint is verified against the full
/// [`TemplateKey`], so collisions cost a failed comparison, never a wrong
/// plan.
#[derive(Debug, Clone)]
pub(crate) struct StreamHasher(u64);

impl StreamHasher {
    /// Fixed seed: fingerprints are only ever compared within one
    /// process, but seeding keeps short inputs away from the weak
    /// low-entropy states of the bare mixer.
    const SEED: u64 = 0x51ab_7e1e_0a5c_93d5;
    const MULT: u64 = 0x9e37_79b9_7f4a_7c15;

    pub(crate) fn new() -> Self {
        StreamHasher(Self::SEED)
    }

    /// Folds one word into the state.
    #[inline(always)]
    pub(crate) fn mix(&mut self, x: u64) {
        self.0 = (self.0.rotate_left(23) ^ x).wrapping_mul(Self::MULT);
    }

    /// The finalized fingerprint (splitmix64 finalizer: every input bit
    /// reaches every output bit, so shard selection can use the high bits
    /// while the probe table uses the value whole).
    pub(crate) fn finish(&self) -> u64 {
        let mut z = self.0;
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `Hasher` so `#[derive(Hash)]` types (orderings, precisions) can fold
/// themselves into a fingerprint; the hot per-edge loop calls
/// [`StreamHasher::mix`] directly and never routes through this trait.
impl std::hash::Hasher for StreamHasher {
    fn finish(&self) -> u64 {
        StreamHasher::finish(self)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// One edge packed as `(from << 32) | to`: the word the fingerprint mixes
/// and the stored-key verify path compares. Vertex ids fit u32 by far —
/// [`FlowNetwork`] construction bounds them by the vertex count.
#[inline(always)]
fn pack_edge(e: &ohmflow_graph::Edge) -> u64 {
    ((e.from as u64) << 32) | e.to as u64
}

/// Structural identity of a max-flow instance: everything the substrate's
/// netlist *structure* depends on, and nothing it does not (capacities and
/// source values are excluded). Two graphs with equal keys can share one
/// [`SubstrateTemplate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateKey {
    /// Fingerprint of the fields below, computed once at construction.
    /// First field on purpose: the derived `PartialEq` compares it before
    /// the edge list, so cache probes against a *different* topology
    /// reject on one `u64` instead of walking the edges, and `Hash`
    /// (manual, below) writes only this — plan-cache hits stop re-hashing
    /// the whole edge list on every lookup.
    hash: u64,
    vertices: usize,
    source: usize,
    sink: usize,
    /// Edge list in id order, each edge packed as `(from << 32) | to` —
    /// parallel edges are distinct widgets, so the full list (not a set)
    /// is the identity. Packed so the verify path behind every
    /// fingerprint-probed cache hit is a straight `u64` word compare.
    edges: Vec<u64>,
    /// The LU column ordering the template's symbolic factorization was
    /// built under. Part of the identity: a symbolic plan is only reusable
    /// under the ordering that produced it, so caches must never hand a
    /// min-degree-era template to an AMD+BTF solve (or vice versa).
    ordering: ohmflow_circuit::ColumnOrdering,
    /// The numeric precision of the template's stored factor values. Part
    /// of the identity for the same reason: an f32 value-array plan primed
    /// into an f64 solve (or vice versa) would silently change every
    /// cached refactorization's accuracy.
    precision: ohmflow_circuit::Precision,
}

impl TemplateKey {
    /// The key of `g` under the default column ordering.
    pub fn of(g: &FlowNetwork) -> Self {
        Self::with_ordering(g, ohmflow_circuit::ColumnOrdering::default())
    }

    /// The key of `g` under an explicit column ordering (what
    /// [`BuildOptions::lu_ordering`](crate::builder::BuildOptions) selects)
    /// and the default (f64) precision.
    pub fn with_ordering(g: &FlowNetwork, ordering: ohmflow_circuit::ColumnOrdering) -> Self {
        Self::with_lu(g, ordering, ohmflow_circuit::Precision::default())
    }

    /// The key of `g` under an explicit column ordering and numeric
    /// precision (what
    /// [`BuildOptions::lu_ordering`](crate::builder::BuildOptions) and
    /// [`BuildOptions::lu_precision`](crate::builder::BuildOptions)
    /// select).
    pub fn with_lu(
        g: &FlowNetwork,
        ordering: ohmflow_circuit::ColumnOrdering,
        precision: ohmflow_circuit::Precision,
    ) -> Self {
        let edges: Vec<u64> = g.edges().iter().map(pack_edge).collect();
        TemplateKey {
            hash: Self::fingerprint(g, ordering, precision),
            vertices: g.vertex_count(),
            source: g.source(),
            sink: g.sink(),
            edges,
            ordering,
            precision,
        }
    }

    /// The topology fingerprint of `g` under the given factorization
    /// identity, computed in **one streaming pass** over the graph: no
    /// intermediate edge `Vec`, no per-edge `Hash` dispatch — one
    /// multiply–rotate mix per edge (see `StreamHasher`). Equal to the
    /// cached hash of [`TemplateKey::with_lu`] on the same inputs by
    /// construction, so a cache can probe on the fingerprint alone and
    /// fall back to the full key only on a match.
    ///
    /// Collisions between *different* topologies are possible (64-bit
    /// hash) and harmless: every consumer verifies a fingerprint match
    /// against the stored [`TemplateKey`] before serving a plan.
    pub fn fingerprint(
        g: &FlowNetwork,
        ordering: ohmflow_circuit::ColumnOrdering,
        precision: ohmflow_circuit::Precision,
    ) -> u64 {
        use std::hash::Hash as _;
        let mut h = StreamHasher::new();
        h.mix(g.vertex_count() as u64);
        h.mix(g.source() as u64);
        h.mix(g.sink() as u64);
        // Bulk edge loop: four interleaved mixer lanes (distinctly seeded,
        // position still matters — edge i always lands in lane i % 4), so
        // the serial rotate–xor–multiply dependency chain runs four-wide.
        let edges = g.edges();
        let mut lanes = [
            StreamHasher::SEED ^ 0x243f_6a88_85a3_08d3,
            StreamHasher::SEED ^ 0x1319_8a2e_0370_7344,
            StreamHasher::SEED ^ 0xa409_3822_299f_31d0,
            StreamHasher::SEED ^ 0x082e_fa98_ec4e_6c89,
        ];
        let mut chunks = edges.chunks_exact(4);
        for c in chunks.by_ref() {
            for (k, e) in c.iter().enumerate() {
                lanes[k] =
                    (lanes[k].rotate_left(23) ^ pack_edge(e)).wrapping_mul(StreamHasher::MULT);
            }
        }
        for (k, e) in chunks.remainder().iter().enumerate() {
            lanes[k] = (lanes[k].rotate_left(23) ^ pack_edge(e)).wrapping_mul(StreamHasher::MULT);
        }
        h.mix(edges.len() as u64);
        for lane in lanes {
            h.mix(lane);
        }
        ordering.hash(&mut h);
        precision.hash(&mut h);
        h.finish()
    }

    /// The cached fingerprint (what [`TemplateKey::fingerprint`] returns
    /// for the key's own inputs).
    pub fn fingerprint_value(&self) -> u64 {
        self.hash
    }

    /// Number of edges in the keyed topology.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The keyed topology for the structural audits: vertex count, source,
    /// sink, and the id-ordered packed edge list (`(from << 32) | to`).
    pub(crate) fn topology(&self) -> (usize, usize, usize, &[u64]) {
        (self.vertices, self.source, self.sink, &self.edges)
    }

    /// Allocation-free check that `g` has exactly this key's topology:
    /// vertex count, source, sink and the full id-ordered edge list. This
    /// is the verification step behind every fingerprint-probed cache hit
    /// — it walks `g`'s edges once against the stored list and never
    /// hashes or allocates.
    pub fn matches_graph(&self, g: &FlowNetwork) -> bool {
        if self.vertices != g.vertex_count()
            || self.source != g.source()
            || self.sink != g.sink()
            || self.edges.len() != g.edge_count()
        {
            return false;
        }
        // Word-compare the packed edge lists four at a time: one branch
        // per chunk instead of one per edge.
        let live = g.edges();
        let mut stored = self.edges.chunks_exact(4);
        let mut fresh = live.chunks_exact(4);
        for (s, l) in stored.by_ref().zip(fresh.by_ref()) {
            let mut same = true;
            for (w, e) in s.iter().zip(l) {
                same &= *w == pack_edge(e);
            }
            if !same {
                return false;
            }
        }
        stored
            .remainder()
            .iter()
            .zip(fresh.remainder())
            .all(|(w, e)| *w == pack_edge(e))
    }

    /// Full verification of a fingerprint match: the key serves `g` under
    /// exactly this factorization identity (ordering + precision) and
    /// topology. Rules out both fingerprint collisions between topologies
    /// and collisions between factorization identities of one topology.
    pub fn verifies(
        &self,
        g: &FlowNetwork,
        ordering: ohmflow_circuit::ColumnOrdering,
        precision: ohmflow_circuit::Precision,
    ) -> bool {
        self.ordering == ordering && self.precision == precision && self.matches_graph(g)
    }
}

/// Hashes only the cached fingerprint: the expensive edge-list traversal
/// happened once in [`TemplateKey::with_ordering`]. Consistent with the
/// derived `PartialEq` — equal keys have equal cached hashes because the
/// fingerprint is a pure function of the compared fields.
impl std::hash::Hash for TemplateKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// A reusable substrate for one graph topology: circuit skeleton, shared
/// cold-path artifacts and warm-start state. See the module docs.
#[derive(Debug)]
pub struct SubstrateTemplate {
    key: TemplateKey,
    params: SubstrateParams,
    opts: BuildOptions,
    /// Skeleton with per-edge level sources; instances are value-restamped
    /// clones of it.
    skeleton: SubstrateCircuit,
    /// Per-edge level-source ids (`None` for grounded circulation edges).
    level_sources: Vec<Option<ohmflow_circuit::ElementId>>,
    /// Shared MNA structure + base sparsity + symbolic/numeric LU.
    dc: Arc<DcTemplate>,
    /// Converged device states of the most recent solve, keyed by a
    /// fingerprint of the instance *values* (clamp voltages + drive). A
    /// warm start is only sound when the instance is value-identical: the
    /// complementarity fixed point reached from the all-off start is the
    /// physical one, and warm-starting a *different* value assignment can
    /// converge to a different (spurious) equilibrium — so the hint is
    /// never applied across value changes.
    warm: Mutex<Option<(u64, Vec<DeviceState>)>>,
}

/// Fingerprint of everything the warm-start fixed point depends on beyond
/// topology: the values actually stamped into the quasi-static solve — the
/// DC value of every independent source (capacity levels, the drive, and
/// any source a caller restamped through `circuit_mut`) and every
/// resistive element value (so a variation-perturbed instance never
/// inherits an unperturbed instance's clamp states). Pure readout scales
/// (`volts_per_flow`) are deliberately excluded — capacity vectors that map
/// to the same voltages share their fixed point.
pub(crate) fn value_fingerprint(sc: &SubstrateCircuit) -> u64 {
    use ohmflow_circuit::Element;
    // Same seeded streaming hasher as the topology fingerprint (one mix
    // per value instead of an unseeded SipHash construction per call) —
    // the warm-start lookup rides the same machinery as the plan cache.
    let mut h = StreamHasher::new();
    for e in sc.circuit().elements() {
        match e {
            Element::VoltageSource { value, .. } | Element::CurrentSource { value, .. } => {
                h.mix(value.dc_value().to_bits());
            }
            Element::Resistor { resistance, .. } => h.mix(resistance.to_bits()),
            Element::NegativeResistorDyn { magnitude, .. } => h.mix(magnitude.to_bits()),
            Element::Memristor { .. } => {
                if let Some(r) = e.memristance() {
                    h.mix(r.to_bits());
                }
            }
            _ => {}
        }
    }
    h.finish()
}

impl SubstrateTemplate {
    /// Runs the full cold path for `g`'s topology: builds the per-edge
    /// skeleton (using `g`'s capacities as the initial values) and derives
    /// the shared structure and factorization.
    ///
    /// # Errors
    ///
    /// Build failures propagate; circuit-level failures if the base
    /// operating-point matrix cannot be factored.
    pub fn new(
        g: &FlowNetwork,
        params: &SubstrateParams,
        opts: &BuildOptions,
    ) -> Result<Self, AnalogError> {
        Self::with_lu_options(g, params, opts, opts.lu_options())
    }

    /// [`SubstrateTemplate::new`] with the full factorization options made
    /// explicit — how the facade threads `SolveOptions::lu` (pivoting
    /// thresholds included, not just the ordering) into the plan's
    /// symbolic work. `lu.ordering` wins over `opts.lu_ordering` (the
    /// facade's precedence rule): the stored build options and the
    /// topology key are normalized to it.
    ///
    /// # Errors
    ///
    /// Same as [`SubstrateTemplate::new`].
    pub fn with_lu_options(
        g: &FlowNetwork,
        params: &SubstrateParams,
        opts: &BuildOptions,
        lu: ohmflow_circuit::LuOptions,
    ) -> Result<Self, AnalogError> {
        let mut opts = *opts;
        opts.lu_ordering = lu.ordering;
        opts.lu_precision = lu.precision;
        let (skeleton, level_sources) = build_with_layout(g, params, &opts, LevelLayout::PerEdge)?;
        let dc =
            Arc::new(DcTemplate::with_options(skeleton.circuit(), lu).map_err(AnalogError::from)?);
        Ok(SubstrateTemplate {
            key: TemplateKey::with_lu(g, lu.ordering, lu.precision),
            params: params.clone(),
            opts,
            skeleton,
            level_sources,
            dc,
            warm: Mutex::new(None),
        })
    }

    /// The topology key this template serves.
    pub fn key(&self) -> &TemplateKey {
        &self.key
    }

    /// The shared circuit-level cold-path artifacts.
    pub fn dc_template(&self) -> &Arc<DcTemplate> {
        &self.dc
    }

    /// The build options the skeleton was constructed with.
    pub fn build_options(&self) -> &BuildOptions {
        &self.opts
    }

    /// Per-edge capacity-level source ids, edge-id order (`None` for
    /// grounded circulation edges) — what a delta session restamps to
    /// apply capacity updates and clamp-to-zero removals without touching
    /// structure.
    pub(crate) fn level_sources(&self) -> &[Option<ohmflow_circuit::ElementId>] {
        &self.level_sources
    }

    /// Instantiates the template for `g`'s capacities (the template's own
    /// capacity mapping). `g` must have the same topology as the template
    /// was built from; capacities are free.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidConfig`] on a topology mismatch.
    pub fn instantiate(&self, g: &FlowNetwork) -> Result<SubstrateCircuit, AnalogError> {
        self.instantiate_mapped(g, self.opts.capacity_mapping)
    }

    /// [`SubstrateTemplate::instantiate`] with an explicit capacity→voltage
    /// mapping override — the Fig. 10 `N`-sweep: the same topology is
    /// re-instantiated per quantization level count, all value-only.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidConfig`] on a topology mismatch.
    pub fn instantiate_mapped(
        &self,
        g: &FlowNetwork,
        mapping: CapacityMapping,
    ) -> Result<SubstrateCircuit, AnalogError> {
        // Allocation-free topology verification (the key's ordering and
        // precision already equal the template's own build options by
        // construction, so only the graph shape needs checking).
        if !self.key.matches_graph(g) {
            return Err(AnalogError::InvalidConfig {
                what: "template instantiated with a different graph topology".to_owned(),
            });
        }
        // Value-only work: map capacities to clamp voltages and restamp the
        // per-edge level sources of a skeleton clone.
        let c_max = g.max_capacity() as f64;
        let exact = ExactScaling::new(self.params.v_dd, c_max);
        let quantizer = match mapping {
            CapacityMapping::Exact => None,
            CapacityMapping::Quantized { levels } => {
                Some(Quantizer::new(levels, self.params.v_dd, c_max))
            }
        };
        let clamp_volts: Vec<f64> = g
            .edges()
            .iter()
            .map(|e| match &quantizer {
                None => exact.to_volts(e.capacity as f64),
                Some(q) => q.quantize(e.capacity as f64),
            })
            .collect();

        let mut sc = self.skeleton.clone();
        let v_on = self.params.diode.v_on;
        for (k, src) in self.level_sources.iter().enumerate() {
            if let Some(id) = src {
                sc.circuit_mut()
                    .set_source_value(*id, SourceValue::dc(clamp_volts[k] - v_on))
                    .expect("invariant: per-level source ids are recorded at build time");
            }
        }
        sc.set_capacity_values(clamp_volts, self.params.v_dd / c_max);
        sc.attach_dc_template(Arc::clone(&self.dc));
        Ok(sc)
    }

    /// The warm-start hint: converged device states of the last solve with
    /// the **same instance values** (fingerprint match), if any.
    pub(crate) fn warm_states_for(&self, fingerprint: u64) -> Option<Vec<DeviceState>> {
        self.warm
            .lock()
            .expect("invariant: warm-state lock is never poisoned")
            .as_ref()
            .filter(|(fp, _)| *fp == fingerprint)
            .map(|(_, s)| s.clone())
    }

    /// Records converged device states as the warm start for future solves
    /// of the same value assignment.
    pub(crate) fn store_warm_states(&self, fingerprint: u64, states: &[DeviceState]) {
        *self
            .warm
            .lock()
            .expect("invariant: warm-state lock is never poisoned") =
            Some((fingerprint, states.to_vec()));
    }
}

/// `true` if the circuit of every member has the same structure, so one
/// [`DcTemplate`] derived from the first member serves the whole batch
/// (the facade's `solve_many` grouping check for built members).
pub(crate) fn uniform_structure(scs: &[&SubstrateCircuit]) -> bool {
    let Some(first) = scs.first() else {
        return false;
    };
    let c0 = first.circuit();
    scs[1..].iter().all(|sc| {
        let c = sc.circuit();
        c.node_count() == c0.node_count() && c.element_count() == c0.element_count()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use ohmflow_graph::generators;

    fn params_and_opts() -> (SubstrateParams, BuildOptions) {
        let mut params = SubstrateParams::table1();
        params.v_flow = 50.0 * params.v_dd;
        (params, BuildOptions::ideal())
    }

    #[test]
    fn template_key_distinguishes_topologies() {
        let a = generators::fig5a();
        // fig5a and fig15a share a 5-vertex diamond topology (they differ
        // only in capacities) — the key treats them as the same substrate,
        // while a genuinely different shape must differ.
        assert_eq!(
            TemplateKey::of(&a),
            TemplateKey::of(&generators::fig15a(10))
        );
        let b = generators::path(&[5, 2, 9]).unwrap();
        assert_ne!(TemplateKey::of(&a), TemplateKey::of(&b));
        // Same topology, different capacities: same key.
        let c = a.scaled_capacities(2).unwrap();
        assert_eq!(TemplateKey::of(&a), TemplateKey::of(&c));
    }

    #[test]
    fn template_key_separates_orderings() {
        use ohmflow_circuit::ColumnOrdering;
        // A symbolic plan is only valid under the ordering that built it:
        // the same topology under different orderings must never share a
        // cache slot, while the default-ordering key stays stable.
        let a = generators::fig5a();
        assert_ne!(
            TemplateKey::of(&a),
            TemplateKey::with_ordering(&a, ColumnOrdering::MinDegree)
        );
        assert_eq!(
            TemplateKey::of(&a),
            TemplateKey::with_ordering(&a, ColumnOrdering::default())
        );
    }

    #[test]
    fn fingerprint_agrees_with_key_hash() {
        use ohmflow_circuit::{ColumnOrdering, Precision};
        // The streaming one-pass fingerprint must equal the cached hash of
        // the full key on the same inputs — the property that lets the
        // plan cache probe on the fingerprint alone.
        for g in [
            generators::fig5a(),
            generators::path(&[5, 2, 9]).unwrap(),
            generators::layered(3, 2, 5, 1).unwrap(),
        ] {
            for ordering in [ColumnOrdering::default(), ColumnOrdering::Amd] {
                for precision in [Precision::F64, Precision::F32Refined] {
                    let key = TemplateKey::with_lu(&g, ordering, precision);
                    assert_eq!(
                        key.fingerprint_value(),
                        TemplateKey::fingerprint(&g, ordering, precision)
                    );
                }
            }
        }
    }

    #[test]
    fn key_verification_discriminates_topology_and_lu_identity() {
        use ohmflow_circuit::{ColumnOrdering, Precision};
        let g = generators::fig5a();
        let key = TemplateKey::of(&g);
        let (ordering, precision) = (ColumnOrdering::default(), Precision::default());
        assert!(key.verifies(&g, ordering, precision));
        // Capacities are free; topology is not.
        assert!(key.matches_graph(&g.scaled_capacities(3).unwrap()));
        assert!(!key.matches_graph(&generators::path(&[5, 2, 9]).unwrap()));
        // Same topology under a different factorization identity must not
        // verify (a fingerprint collision across orderings would
        // otherwise serve a foreign symbolic plan).
        assert!(!key.verifies(&g, ColumnOrdering::MinDegree, precision));
        assert!(!key.verifies(&g, ordering, Precision::F32Refined));
        // One edge reversed: same counts, different identity.
        let mut rev = ohmflow_graph::FlowNetwork::new(5, 0, 4).unwrap();
        for (i, e) in g.edges().iter().enumerate() {
            if i == 1 {
                rev.add_edge(e.to, e.from, e.capacity).unwrap();
            } else {
                rev.add_edge(e.from, e.to, e.capacity).unwrap();
            }
        }
        assert!(!key.matches_graph(&rev));
    }

    #[test]
    fn instantiate_rejects_topology_mismatch() {
        let (params, opts) = params_and_opts();
        let tpl = SubstrateTemplate::new(&generators::fig5a(), &params, &opts).unwrap();
        let other = generators::path(&[5, 2, 9]).unwrap();
        assert!(matches!(
            tpl.instantiate(&other),
            Err(AnalogError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn instantiate_restamps_clamp_values() {
        let (params, opts) = params_and_opts();
        let g = generators::fig5a();
        let tpl = SubstrateTemplate::new(&g, &params, &opts).unwrap();
        let g2 = g.scaled_capacities(3).unwrap();
        let inst = tpl.instantiate(&g2).unwrap();
        let fresh = build(&g2, &params, &opts).unwrap();
        // Clamp voltages and readout scale must match a fresh build exactly
        // (identical value pipeline, only the source layout differs).
        assert_eq!(inst.volts_per_flow(), fresh.volts_per_flow());
        for k in 0..g2.edge_count() {
            assert_eq!(inst.clamp_volts(k), fresh.clamp_volts(k), "edge {k}");
        }
        assert!(inst.dc_template().is_some());
    }
}
