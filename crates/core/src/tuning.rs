//! §4.3.2 post-fabrication resistance tuning.
//!
//! The substrate is reconfigured into the Fig. 9b tuning circuit (a simple
//! negation widget that should enforce `V(x⁻) = −V(x)`), then:
//!
//! 1. with `V(x) = 0`, the negative resistor `R3` is modulated until
//!    `V(x⁻) = 0` (this enforces `1/R3 = 1/r1 + 1/r2`),
//! 2. with `V(x) = 1 V`, `r1` and `r2` are scaled together until
//!    `V(x⁻) = −1 V`,
//!
//! iterating the two steps until the negation error is below a target.
//! Memristive resistors make the fine-grained modulation possible (§3).

use ohmflow_circuit::{Circuit, DcPlan, DcSolver, ElementId, NodeId, SourceValue};

use crate::AnalogError;

/// Result of a tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningResult {
    /// Final `r1` (Ω).
    pub r1: f64,
    /// Final `r2` (Ω).
    pub r2: f64,
    /// Final `R3` magnitude (Ω, the realized negative resistance).
    pub r3: f64,
    /// Residual negation error `|V(x⁻) + V(x)|` at `V(x) = 1 V`.
    pub residual: f64,
    /// Outer iterations used.
    pub iterations: usize,
}

/// The Fig. 9b tuning circuit with (possibly parasitic-laden) component
/// values that the §4.3.2 procedure will correct.
#[derive(Debug)]
pub struct TuningCircuit {
    ckt: Circuit,
    xneg: NodeId,
    src: ElementId,
    r1_id: ElementId,
    r3_id: ElementId,
    r1: f64,
    r2: f64,
    r3: f64,
    /// Cold-path artifacts built once: the tuning loop re-solves this tiny
    /// circuit ~100 times per outer iteration (bisection on `r1`) with only
    /// resistor/source *values* changing, which is exactly the plan's
    /// value-only fast path.
    plan: Option<DcPlan>,
}

impl TuningCircuit {
    /// Builds the tuning circuit with the given *actual* (perturbed)
    /// resistor values: `r1`, `r2` around node `P`, and the negative
    /// resistor magnitude `r3`.
    ///
    /// # Panics
    ///
    /// Panics if any value is not positive.
    pub fn new(r1: f64, r2: f64, r3: f64) -> Self {
        assert!(
            r1 > 0.0 && r2 > 0.0 && r3 > 0.0,
            "resistances must be positive"
        );
        let mut ckt = Circuit::new();
        let x = ckt.node("x");
        let p = ckt.node("p");
        let xneg = ckt.node("xneg");
        let _ = x;
        let src = ckt.voltage_source(x, Circuit::GROUND, SourceValue::dc(0.0));
        let r1_id = ckt.resistor(x, p, r1);
        ckt.resistor(xneg, p, r2);
        let r3_id = ckt.resistor(p, Circuit::GROUND, -r3);
        // A light load fixes x⁻'s level as in the real widget.
        ckt.resistor(xneg, Circuit::GROUND, 100.0 * r1);
        let plan = DcSolver::new().plan(&ckt).ok();
        TuningCircuit {
            ckt,
            xneg,
            src,
            r1_id,
            r3_id,
            r1,
            r2,
            r3,
            plan,
        }
    }

    fn measure_xneg(&mut self, vx: f64) -> Result<f64, AnalogError> {
        self.ckt
            .set_source_value(self.src, SourceValue::dc(vx))
            .expect("invariant: tuner ids are recorded at build time");
        let sol = match &self.plan {
            Some(plan) => plan.solve(&self.ckt),
            None => DcSolver::new().solve(&self.ckt),
        }
        .map_err(AnalogError::from)?
        .0;
        Ok(sol.voltage(self.xneg))
    }

    /// Runs the two-step §4.3.2 procedure until the negation residual is
    /// below `target` or `max_iters` outer iterations elapse.
    ///
    /// # Errors
    ///
    /// [`AnalogError::TuningFailed`] when the residual target is not met;
    /// circuit failures propagate.
    pub fn tune(&mut self, target: f64, max_iters: usize) -> Result<TuningResult, AnalogError> {
        let mut residual = f64::INFINITY;
        for iter in 0..max_iters {
            // Step 1: enforce 1/R3 = 1/r1 + 1/r2. On hardware this is the
            // "V(x) = 0, null V(x⁻)" measurement (any offset excitation
            // makes V(x⁻) sensitive to the conductance mismatch); in an
            // ideal noise-free simulation the homogeneous system is zero
            // for *any* R3, so we apply the calibration equation directly —
            // the memristive modulation the measurement would converge to.
            self.r3 = 1.0 / (1.0 / self.r1 + 1.0 / self.r2);
            self.ckt
                .set_resistance(self.r3_id, -self.r3)
                .expect("invariant: tuner ids are recorded at build time");

            // Step 2: V(x) = 1 V; scale r1 (keeping r2) until V(x⁻) = −1.
            // V(x⁻) is monotone in the r2/r1 ratio; bisection on r1.
            let mut lo = self.r1 * 0.25;
            let mut hi = self.r1 * 4.0;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                self.ckt
                    .set_resistance(self.r1_id, mid)
                    .expect("invariant: tuner ids are recorded at build time");
                self.r1 = mid;
                let v = self.measure_xneg(1.0)?;
                // Larger r1 ⇒ weaker pull from x ⇒ |V(x⁻)| smaller.
                if v < -1.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
                if (hi - lo) / self.r1 < 1e-12 {
                    break;
                }
            }

            residual = (self.measure_xneg(1.0)? + 1.0).abs();
            if residual < target {
                return Ok(TuningResult {
                    r1: self.r1,
                    r2: self.r2,
                    r3: self.r3,
                    residual,
                    iterations: iter + 1,
                });
            }
        }
        Err(AnalogError::TuningFailed { residual })
    }

    /// Current `(r1, r2, r3)` values.
    pub fn values(&self) -> (f64, f64, f64) {
        (self.r1, self.r2, self.r3)
    }

    /// Measured negation error `|V(x⁻) + V(x)|` at `V(x) = 1 V` without
    /// changing anything — the figure of merit before/after tuning.
    ///
    /// # Errors
    ///
    /// Propagates circuit failures.
    pub fn negation_error(&mut self) -> Result<f64, AnalogError> {
        Ok((self.measure_xneg(1.0)? + 1.0).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_ideal_circuit_tunes_immediately() {
        // r1 = r2 = r, r3 = r/2: the exact Fig. 9b values.
        let mut tc = TuningCircuit::new(10e3, 10e3, 5e3);
        let before = tc.negation_error().unwrap();
        assert!(before < 1e-6, "ideal circuit error {before}");
        let result = tc.tune(1e-6, 4).unwrap();
        assert!(result.residual < 1e-6);
    }

    #[test]
    fn tuning_repairs_parasitic_resistance() {
        // 3 % parasitic skew on r1 and a mis-set R3.
        let mut tc = TuningCircuit::new(10.3e3, 10e3, 5.4e3);
        let before = tc.negation_error().unwrap();
        assert!(
            before > 1e-3,
            "perturbed circuit should start bad: {before}"
        );
        let result = tc.tune(1e-3, 16).unwrap();
        assert!(result.residual < 1e-3, "after tuning: {}", result.residual);
        // R3 should approach r1∥r2 of the *tuned* values.
        let (r1, r2, r3) = tc.values();
        let parallel = 1.0 / (1.0 / r1 + 1.0 / r2);
        assert!(
            (r3 - parallel).abs() / parallel < 0.05,
            "R3 {r3} vs r1||r2 {parallel}"
        );
    }

    #[test]
    fn severe_mismatch_reported_as_failure() {
        // r2 wildly off and outside the adjustment range of r1/R3 search.
        let mut tc = TuningCircuit::new(10e3, 47e3, 5e3);
        match tc.tune(1e-9, 1) {
            Err(AnalogError::TuningFailed { residual }) => assert!(residual > 0.0),
            Ok(r) => {
                // If the search does manage it, the residual must honor the
                // target.
                assert!(r.residual < 1e-9);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_resistance_panics() {
        let _ = TuningCircuit::new(0.0, 1.0, 1.0);
    }
}
