//! §6.5 circuit dynamic behaviour: the quasi-static trajectory of the node
//! voltages as `V_flow` ramps slowly (Fig. 15).
//!
//! The drive is slow enough that the circuit tracks its constrained
//! equilibrium at every instant; the solution point moves through the
//! *interior* of the feasible region (the paper conjectures a connection
//! with interior-point methods), with piecewise-linear segments separated
//! by *breakpoints* where a capacity clamp engages.

use ohmflow_circuit::{DcPlan, DcSolver};
use ohmflow_graph::FlowNetwork;
use rayon::prelude::*;

use crate::builder::{self, BuildOptions, Drive};
use crate::params::SubstrateParams;
use crate::AnalogError;

/// A quasi-static trajectory: per-step `V_flow` and the edge flows.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The `V_flow` ramp samples (volts).
    pub vflow: Vec<f64>,
    /// Edge flows (flow units) per sample, edge-id indexed inner vectors.
    pub flows: Vec<Vec<f64>>,
    /// Breakpoints: `(vflow, edge)` where the edge first reached its
    /// capacity clamp (within tolerance).
    pub breakpoints: Vec<(f64, usize)>,
}

impl Trajectory {
    /// The final flow value (net out of the source is not tracked here;
    /// this is simply the last sampled per-edge assignment).
    pub fn final_flows(&self) -> &[f64] {
        self.flows
            .last()
            .expect("invariant: trajectories record at least one sample")
    }

    /// `true` if every sampled point is strictly feasible (capacity +
    /// conservation within `tol`) — the "moves through the interior"
    /// property of Fig. 15c.
    pub fn all_points_feasible(&self, g: &FlowNetwork, tol: f64) -> bool {
        self.flows.iter().all(|f| g.validate_flow(f, tol).is_some())
    }
}

/// Traces the quasi-static trajectory of `g`: `steps + 1` DC solves with
/// `V_flow` ramped linearly from 0 to `v_flow_max`.
///
/// # Errors
///
/// Propagates construction and DC-solve failures.
pub fn trace_quasi_static(
    g: &FlowNetwork,
    params: &SubstrateParams,
    v_flow_max: f64,
    steps: usize,
) -> Result<Trajectory, AnalogError> {
    let mut params = params.clone();
    params.v_flow = v_flow_max;
    let mut opts = BuildOptions::ideal();
    opts.drive = Drive::Ramp { duration: 1.0 };
    let sc = builder::build(g, &params, &opts)?;

    // Every ramp sample is an independent quasi-static solve, so the sweep
    // fans out across all cores (the vendored rayon parallelizes slices,
    // hence the materialized sample list); the breakpoint scan below needs
    // the samples in order and stays sequential. All samples solve the same
    // circuit at different drive levels, so the cold path (structure +
    // ordering + symbolic analysis) runs once here — or is taken verbatim
    // from a template-instantiated circuit — and each worker derives a
    // thread-local numeric factor from the shared symbolic plan.
    let dcs = DcSolver::new();
    let plan: Option<DcPlan> = match sc.dc_template() {
        Some(t) => Some(dcs.plan_from(std::sync::Arc::clone(t))),
        None => dcs.plan(sc.circuit()).ok(),
    };
    let samples: Vec<usize> = (0..=steps).collect();
    let flows = samples
        .par_iter()
        .map(|&k| {
            let t = k as f64 / steps as f64; // ramp position in [0, 1]
            match &plan {
                Some(plan) => plan.solve_at(sc.circuit(), t),
                None => dcs.solve_at(sc.circuit(), t),
            }
            .map(|(sol, _)| sc.edge_flows(|n| sol.voltage(n)))
            .map_err(AnalogError::from)
        })
        .collect::<Vec<Result<Vec<f64>, AnalogError>>>()
        .into_iter()
        .collect::<Result<Vec<Vec<f64>>, AnalogError>>()?;

    let vflow: Vec<f64> = (0..=steps)
        .map(|k| v_flow_max * k as f64 / steps as f64)
        .collect();
    let mut breakpoints = Vec::new();
    let mut at_clamp = vec![false; g.edge_count()];
    for (f, &v_now) in flows.iter().zip(&vflow) {
        for (e, &fe) in f.iter().enumerate() {
            let cap = g.edge(ohmflow_graph::EdgeId(e)).capacity as f64;
            let clamped = fe >= cap * (1.0 - 1e-4);
            if clamped && !at_clamp[e] {
                at_clamp[e] = true;
                breakpoints.push((v_now, e));
            }
        }
    }
    Ok(Trajectory {
        vflow,
        flows,
        breakpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohmflow_graph::generators;

    #[test]
    fn fig15_trajectory_shape() {
        // Eq. (8): max x1 s.t. x1 = x2 + x3, x1 ≤ 4, x2 ≤ 1, x3 ≤ 4.
        let g = generators::fig15a(10);
        let params = SubstrateParams::table1();
        let traj = trace_quasi_static(&g, &params, 60.0, 120).unwrap();

        // Terminal point is the optimum B(4, 1, 3) of Fig. 15c.
        let f = traj.final_flows();
        assert!((f[0] - 4.0).abs() < 0.05, "x1 = {}", f[0]);
        assert!((f[1] - 1.0).abs() < 0.05, "x2 = {}", f[1]);
        assert!((f[2] - 3.0).abs() < 0.05, "x3 = {}", f[2]);

        // x2 (edge 1) clamps strictly before x1 (edge 0) — the D-then-B
        // breakpoint ordering of Fig. 15c.
        let bp_x2 = traj.breakpoints.iter().find(|&&(_, e)| e == 1);
        let bp_x1 = traj.breakpoints.iter().find(|&&(_, e)| e == 0);
        let (v2, _) = bp_x2.expect("x2 must clamp");
        let (v1, _) = bp_x1.expect("x1 must clamp");
        assert!(v2 < v1, "x2 clamps at {v2} V, before x1 at {v1} V");
    }

    #[test]
    fn trajectory_stays_feasible() {
        let g = generators::fig15a(10);
        let params = SubstrateParams::table1();
        let traj = trace_quasi_static(&g, &params, 60.0, 60).unwrap();
        assert!(traj.all_points_feasible(&g, 0.02));
    }

    #[test]
    fn flows_grow_monotonically_along_the_ramp() {
        // §2.3 proves the solution increases with V_flow; x1's trajectory
        // must be (weakly) monotone.
        let g = generators::fig15a(10);
        let params = SubstrateParams::table1();
        let traj = trace_quasi_static(&g, &params, 60.0, 60).unwrap();
        let x1: Vec<f64> = traj.flows.iter().map(|f| f[0]).collect();
        for w in x1.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "x1 not monotone: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn fig5a_breakpoint_cascade() {
        let g = generators::fig5a();
        let params = SubstrateParams::table1();
        let traj = trace_quasi_static(&g, &params, 60.0, 120).unwrap();
        // Optimum: x1 = 2, branch flows 1 each; x3 (cap 1) and x4 (cap 1)
        // both end at their clamps.
        let f = traj.final_flows();
        assert!((f[0] - 2.0).abs() < 0.05);
        assert!(traj.breakpoints.iter().any(|&(_, e)| e == 2));
        assert!(traj.breakpoints.iter().any(|&(_, e)| e == 3));
    }
}
