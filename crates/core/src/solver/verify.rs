//! Solver-side structural invariant audits.
//!
//! The linalg crate audits the factorization structures
//! ([`ohmflow_linalg::AuditError`] documents the scheme); this module
//! audits the solver-layer structures stacked on top of them:
//!
//! * [`DeltaMetadata`](crate::builder) — the value-only surgery handles a
//!   delta session toggles. A wrong handle silently edits the *wrong
//!   resistor*, which corrupts flows without any solver error, so the
//!   audit pins element-id uniqueness and the closure between edge
//!   surgery handles and the per-vertex star handles.
//! * The sharded plan cache (audited in `plan_cache.rs`, surfaced through
//!   [`AnalogMaxFlow::audit_plan_cache`](crate::solver::AnalogMaxFlow::audit_plan_cache))
//!   — LRU byte accounting and fingerprint→shard placement.
//!
//! Public entry points: [`Plan::audit`](crate::solver::facade::Plan::audit),
//! [`DeltaSession::audit`](crate::solver::delta::DeltaSession::audit) and
//! [`AnalogMaxFlow::audit_plan_cache`](crate::solver::AnalogMaxFlow::audit_plan_cache);
//! the `ohmflow-audit` binary drives all of them across the bench
//! substrates.

use ohmflow_linalg::AuditError;

use crate::builder::DeltaMetadata;

/// Audits a [`DeltaMetadata`] table against the edge list of the graph
/// the substrate was built from (`edges[k] = (from, to)` in build order).
///
/// Invariants:
///
/// * `element-id-unique` — every surgery handle (tail/head couplings,
///   ghost anchors, star elements) names a distinct circuit element; a
///   duplicated id would make one surgery clobber another's resistor.
/// * `star-membership-closure` — per-vertex star handles agree with edge
///   membership: circulation edges (into the source / out of the sink)
///   carry no handles, a head coupling exists exactly when the head owns
///   a conservation widget, and each star's `n_base` equals the number of
///   non-circulation edges incident to its vertex.
///
/// # Errors
///
/// The first violated invariant, as a structured [`AuditError`].
pub(crate) fn audit_delta_metadata(
    meta: &DeltaMetadata,
    edges: &[(usize, usize)],
    vertex_count: usize,
    source: usize,
    sink: usize,
) -> Result<(), AuditError> {
    const S: &str = "DeltaMetadata";
    let fail = |invariant: &'static str, location: String| -> AuditError {
        AuditError::new(S, invariant, location)
    };

    if meta.edges.len() != edges.len() || meta.stars.len() != vertex_count {
        return Err(fail(
            "star-membership-closure",
            format!(
                "{} edge / {} star handles vs {} edges / {vertex_count} vertices",
                meta.edges.len(),
                meta.stars.len(),
                edges.len()
            ),
        ));
    }

    // Element-id uniqueness across every handle kind.
    let mut ids: Vec<(usize, String)> = Vec::new();
    for (k, surgery) in meta.edges.iter().enumerate() {
        if let Some(s) = surgery {
            ids.push((s.u_coupling.index(), format!("edge {k} tail coupling")));
            if let Some(v) = s.v_coupling {
                ids.push((v.index(), format!("edge {k} head coupling")));
            }
            ids.push((s.anchor.index(), format!("edge {k} anchor")));
        }
    }
    for (v, star) in meta.stars.iter().enumerate() {
        if let Some(s) = star {
            ids.push((s.element.index(), format!("vertex {v} star")));
        }
    }
    ids.sort_by_key(|&(id, _)| id);
    for w in ids.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(fail(
                "element-id-unique",
                format!("{} and {} share element {}", w[0].1, w[1].1, w[0].0),
            ));
        }
    }

    // Membership closure between edge handles and star handles.
    let mut incident = vec![0usize; vertex_count];
    for (k, (&(from, to), surgery)) in edges.iter().zip(&meta.edges).enumerate() {
        let circulation = to == source || from == sink;
        if circulation != surgery.is_none() {
            return Err(fail(
                "star-membership-closure",
                format!("edge {k} ({from} -> {to}): circulation {circulation} but handles present"),
            ));
        }
        let Some(s) = surgery else { continue };
        let head_widget = to != sink && to != source;
        if s.v_coupling.is_some() != head_widget {
            return Err(fail(
                "star-membership-closure",
                format!("edge {k} ({from} -> {to}): head coupling vs widget mismatch"),
            ));
        }
        if from >= vertex_count || to >= vertex_count {
            return Err(fail(
                "star-membership-closure",
                format!("edge {k}: endpoint out of range"),
            ));
        }
        incident[from] += 1;
        incident[to] += 1;
    }
    for (v, star) in meta.stars.iter().enumerate() {
        let interior = v != source && v != sink;
        match star {
            Some(_) if !interior => {
                return Err(fail(
                    "star-membership-closure",
                    format!("terminal vertex {v} owns a star handle"),
                ));
            }
            Some(s) if s.n_base != incident[v] => {
                return Err(fail(
                    "star-membership-closure",
                    format!(
                        "vertex {v}: star stamped for {} edges, {} incident",
                        s.n_base, incident[v]
                    ),
                ));
            }
            None if interior && incident[v] > 0 && meta.retunable => {
                return Err(fail(
                    "star-membership-closure",
                    format!(
                        "vertex {v}: {} incident edges but no star handle",
                        incident[v]
                    ),
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Mutation-kill suite for the metadata audit: corrupt a freshly built
/// surgery table and assert the right invariant is blamed.
#[cfg(test)]
mod tests {
    use ohmflow_graph::FlowNetwork;

    use super::*;
    use crate::builder::{build, BuildOptions};
    use crate::params::SubstrateParams;

    /// A 4-vertex diamond with every edge non-circulation, built on the
    /// retunable (ideal) substrate, plus its audit inputs.
    fn built_meta() -> (DeltaMetadata, Vec<(usize, usize)>, usize) {
        let mut g = FlowNetwork::new(4, 0, 3).expect("graph");
        g.add_edge(0, 1, 3).expect("edge");
        g.add_edge(0, 2, 2).expect("edge");
        g.add_edge(1, 2, 1).expect("edge");
        g.add_edge(1, 3, 2).expect("edge");
        g.add_edge(2, 3, 3).expect("edge");
        let sc = build(&g, &SubstrateParams::table1(), &BuildOptions::ideal()).expect("build");
        let edges = g.edges().iter().map(|e| (e.from, e.to)).collect();
        (sc.delta_meta().clone(), edges, g.vertex_count())
    }

    #[test]
    fn pristine_metadata_audits_clean() {
        let (meta, edges, n) = built_meta();
        audit_delta_metadata(&meta, &edges, n, 0, 3).expect("valid metadata audits clean");
    }

    #[test]
    fn mutation_duplicated_surgery_handle() {
        let (mut meta, edges, n) = built_meta();
        let stolen = meta.edges[0].as_ref().expect("non-circulation").u_coupling;
        meta.edges[1].as_mut().expect("non-circulation").anchor = stolen;
        let err = audit_delta_metadata(&meta, &edges, n, 0, 3).expect_err("caught");
        assert_eq!(err.invariant, "element-id-unique");
    }

    #[test]
    fn mutation_dropped_star_handle() {
        let (mut meta, edges, n) = built_meta();
        assert!(meta.retunable, "ideal build supports retuning");
        meta.stars[1] = None;
        let err = audit_delta_metadata(&meta, &edges, n, 0, 3).expect_err("caught");
        assert_eq!(err.invariant, "star-membership-closure");
    }

    #[test]
    fn mutation_star_count_desync() {
        let (mut meta, edges, n) = built_meta();
        meta.stars[2].as_mut().expect("interior star").n_base += 1;
        let err = audit_delta_metadata(&meta, &edges, n, 0, 3).expect_err("caught");
        assert_eq!(err.invariant, "star-membership-closure");
    }
}
