//! Streaming graph-delta sessions: reconfiguration as the common case.
//!
//! The paper's substrate is *reconfigurable by design* — one physical
//! fabric, many programmed instances — and real workloads evolve under
//! load: capacities drift, edges appear and vanish. A [`DeltaSession`]
//! holds one live analog substrate across a stream of
//! [`DeltaBatch`]es and maps every delta onto the cheapest mechanism the
//! stack supports:
//!
//! | delta                          | mechanism                         |
//! |--------------------------------|-----------------------------------|
//! | capacity update                | value-only level-source restamp (RHS-only: no symbolic, no numeric factor work) |
//! | edge removal                   | exact excision by value-only resistor surgery, pushed as one rank-k [`LowRankUpdate`](ohmflow_linalg::LowRankUpdate) batch: couplings stamp to open (`1/∞` is exactly zero conductance), a ghost anchor closes so the dangling widget cluster stays nonsingular, and the endpoint stars retune to their live-degree values |
//! | re-insert of a removed edge    | the inverse surgery: couplings back to `r`, anchor reopened, stars retuned |
//! | novel edge insertion           | structural: re-key against the plan cache |
//! | induced clamp-state flips      | batched rank-k Woodbury update ([`LowRankUpdate::push_batch`](ohmflow_linalg::LowRankUpdate::push_batch)) against the standing factorization |
//!
//! The surgery is *exact*: every edited value is bit-for-bit the value a
//! fresh build of the live graph would stamp (the star magnitudes reuse
//! the builder's own margin formula), so session results agree with
//! fresh solves to solver precision — not to a soft-clamp tolerance.
//! Builds whose negative resistors are op-amp subcircuits
//! ([`NegativeResistorImpl::Dynamic`](crate::builder::NegativeResistorImpl)/`OpAmp`)
//! cannot retune star magnitudes by value; topology deltas on them fall
//! back to structural re-keys (capacity updates stay value-only).
//!
//! Two consolidation budgets keep the incremental state healthy:
//!
//! * **numeric**: Woodbury terms are absorbed until the per-solve
//!   correction cost (outstanding rank × dense reach bound) exceeds a
//!   multiple of the factorization fill, then the session consolidates
//!   via a numeric-only refactorization
//!   ([`FrozenDcSession::consolidate`](ohmflow_circuit::FrozenDcSession));
//! * **structural**: removed edges stay stamped (excised but ready to
//!   revive for free) until they outnumber a quarter of the live edges,
//!   then the next re-key compacts them out of the universe.
//!
//! Re-keying goes through the engine's sharded plan cache, so a session
//! that oscillates between a handful of topologies re-plans each of them
//! exactly once.

use std::sync::Arc;

use ohmflow_circuit::{ElementId, FrozenDcSession, FrozenDcStats, SolveReport, SourceValue};
use ohmflow_graph::FlowNetwork;

use crate::builder::{CapacityMapping, SubstrateCircuit};
use crate::quantize::{ExactScaling, Quantizer};
use crate::template::SubstrateTemplate;
use crate::AnalogError;

use super::AnalogMaxFlow;

/// One streaming change to the session's graph. Edge ids are **session
/// ids**: stable for the lifetime of the session (they survive re-keys
/// and compactions), assigned densely — the edges of the opening graph
/// get `0..edge_count`, every [`GraphDelta::InsertEdge`] appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDelta {
    /// Changes the capacity of a live edge (value-only restamp).
    SetCapacity {
        /// Session edge id.
        edge: usize,
        /// New positive capacity.
        capacity: i64,
    },
    /// Removes a live edge (exact value-only excision; revivable in
    /// place for free).
    RemoveEdge {
        /// Session edge id.
        edge: usize,
    },
    /// Inserts an edge. Re-inserting where a removed edge's widgets are
    /// still stamped is a value restamp; a novel endpoint pair re-keys
    /// the session against the plan cache.
    InsertEdge {
        /// Tail vertex.
        from: usize,
        /// Head vertex.
        to: usize,
        /// Positive capacity.
        capacity: i64,
    },
}

/// An ordered batch of [`GraphDelta`]s applied (and solved) atomically by
/// [`DeltaSession::apply_deltas`].
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    deltas: Vec<GraphDelta>,
}

impl DeltaBatch {
    /// An empty batch (applying it just re-solves the current graph).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a capacity update.
    pub fn set_capacity(mut self, edge: usize, capacity: i64) -> Self {
        self.deltas.push(GraphDelta::SetCapacity { edge, capacity });
        self
    }

    /// Appends an edge removal.
    pub fn remove_edge(mut self, edge: usize) -> Self {
        self.deltas.push(GraphDelta::RemoveEdge { edge });
        self
    }

    /// Appends an edge insertion.
    pub fn insert_edge(mut self, from: usize, to: usize, capacity: i64) -> Self {
        self.deltas
            .push(GraphDelta::InsertEdge { from, to, capacity });
        self
    }

    /// Appends an already-constructed delta.
    pub fn push(&mut self, delta: GraphDelta) {
        self.deltas.push(delta);
    }

    /// Number of deltas in the batch.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` if the batch carries no deltas.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The deltas, application order.
    pub fn deltas(&self) -> &[GraphDelta] {
        &self.deltas
    }
}

/// What one [`DeltaSession::apply_deltas`] call did and found.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// Flow value `|f|` (flow units) after the batch.
    pub value: f64,
    /// Per-edge flows in **session id** order (removed edges report 0).
    pub edge_flows: Vec<f64>,
    /// Session ids assigned to the batch's [`GraphDelta::InsertEdge`]s,
    /// batch order (revived edges report their original id).
    pub new_edge_ids: Vec<usize>,
    /// Whether the batch forced a re-key against the plan cache (novel
    /// structure or a blown structural-debt budget).
    pub replanned: bool,
    /// Whether the numeric consolidation budget triggered a
    /// refactorization after the solve.
    pub consolidated: bool,
    /// Complementarity (clamp-state) iterations the solve took.
    pub state_iterations: usize,
}

/// One session edge: endpoints, last-set capacity, liveness, and where
/// (if anywhere) it is stamped in the current universe circuit.
#[derive(Debug, Clone, Copy)]
struct SessionEdge {
    from: usize,
    to: usize,
    capacity: i64,
    live: bool,
    /// Index into the current universe (circuit) edge order; `None` once
    /// a compaction dropped a removed edge's widgets.
    slot: Option<usize>,
}

/// A live analog substrate absorbing streaming graph deltas — see the
/// module docs for the delta taxonomy and consolidation policy. Opened
/// through [`MaxFlowSolver::delta_session`](crate::solver::facade::MaxFlowSolver::delta_session).
#[derive(Debug)]
pub struct DeltaSession {
    engine: AnalogMaxFlow,
    mapping: CapacityMapping,
    v_dd: f64,
    v_on: f64,
    vertices: usize,
    source: usize,
    sink: usize,
    edges: Vec<SessionEdge>,
    /// The live graph's maximum capacity. The flow readout is *not*
    /// invariant under the voltage scale `V_dd / c_max` (the `V_flow`
    /// drive is fixed), so the scale must always be exactly what a fresh
    /// build of the live graph would use: it is recomputed every batch,
    /// and every level source restamps when it moves (still value-only).
    c_max: f64,
    /// The owning incremental session over the universe substrate.
    dc: FrozenDcSession<SubstrateCircuit>,
    /// Per-universe-edge level-source ids (`None` for grounded
    /// circulation edges).
    level_sources: Vec<Option<ElementId>>,
    /// Per-universe-edge clamp voltages (readout metadata mirror).
    clamp_volts: Vec<f64>,
    tpl: Arc<SubstrateTemplate>,
    /// Removed-but-still-stamped edges (the structural debt).
    removed_debt: usize,
    /// Monotone pseudo-time fed to the DC solves.
    clock: f64,
    replans: u64,
    consolidations: u64,
}

/// Numeric consolidation budget: consolidate once the outstanding
/// Woodbury correction (rank × dense reach bound per solve) exceeds this
/// multiple of the factorization fill — past that point a numeric-only
/// refactorization pays for itself within a few solves.
const CONSOLIDATION_FILL_FACTOR: f64 = 4.0;

/// Rank headroom handed to the underlying session so the delta-session
/// budget (not the session's flip-oriented default of 12) governs
/// consolidation.
const SESSION_MAX_RANK: usize = 64;

impl DeltaSession {
    /// Opens a session on `g` (used by
    /// [`MaxFlowSolver::delta_session`](crate::solver::facade::MaxFlowSolver::delta_session)).
    pub(crate) fn open(engine: AnalogMaxFlow, g: &FlowNetwork) -> Result<Self, AnalogError> {
        let build = engine.effective_build_options();
        let params = engine.config().params.clone();
        let mapping = build.capacity_mapping;
        let v_dd = params.v_dd;
        let v_on = params.diode.v_on;
        let c_max = (g.max_capacity() as f64).max(1.0);
        let edges: Vec<SessionEdge> = g
            .edges()
            .iter()
            .map(|e| SessionEdge {
                from: e.from,
                to: e.to,
                capacity: e.capacity,
                live: true,
                slot: None,
            })
            .collect();
        let parts = rekey(
            &engine,
            mapping,
            v_dd,
            v_on,
            c_max,
            g.vertex_count(),
            g.source(),
            g.sink(),
            &edges,
            true,
        )?;
        Ok(DeltaSession {
            mapping,
            v_dd,
            v_on,
            vertices: g.vertex_count(),
            source: g.source(),
            sink: g.sink(),
            edges: parts.edges,
            c_max,
            dc: parts.dc,
            level_sources: parts.level_sources,
            clamp_volts: parts.clamp_volts,
            tpl: parts.tpl,
            removed_debt: 0,
            clock: 0.0,
            replans: 0,
            consolidations: 0,
            engine,
        })
    }

    /// Applies one batch of deltas, solves the resulting graph's
    /// operating point, and reports the new flow assignment.
    ///
    /// Atomicity: the batch is validated delta-by-delta *before* any
    /// electrical work; an invalid delta
    /// ([`AnalogError::InvalidConfig`]) leaves the session exactly as it
    /// was. A solve failure after a valid batch poisons only the cached
    /// operating point (the session recovers on the next solvable
    /// batch), matching the underlying session's recovery semantics.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidConfig`] for out-of-range or dead edge ids,
    /// non-positive capacities, or degenerate insertions; circuit errors
    /// propagate from the solve.
    pub fn apply_deltas(&mut self, batch: &DeltaBatch) -> Result<DeltaReport, AnalogError> {
        self.validate(batch)?;

        let retunable = self.dc.host().delta_meta().retunable;

        // Stage the batch into the session edge table.
        let mut new_edge_ids = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        let mut flipped: Vec<usize> = Vec::new();
        let mut structural = false;
        let mut force_compact = false;
        for &delta in batch.deltas() {
            match delta {
                GraphDelta::SetCapacity { edge, capacity } => {
                    self.edges[edge].capacity = capacity;
                    touched.push(edge);
                }
                GraphDelta::RemoveEdge { edge } => {
                    self.edges[edge].live = false;
                    // `touched` zeroes the level source (see
                    // [`clamp_volts_for`]); `flipped` runs the surgery.
                    touched.push(edge);
                    if retunable {
                        self.removed_debt += 1;
                        flipped.push(edge);
                    } else {
                        // Op-amp star magnitudes live inside subcircuits the
                        // session cannot retune by value: excise structurally.
                        force_compact = true;
                    }
                }
                GraphDelta::InsertEdge { from, to, capacity } => {
                    let revivable = self
                        .edges
                        .iter()
                        .position(|e| !e.live && e.slot.is_some() && e.from == from && e.to == to);
                    match revivable {
                        Some(id) => {
                            self.edges[id].live = true;
                            self.edges[id].capacity = capacity;
                            self.removed_debt -= 1;
                            touched.push(id);
                            flipped.push(id);
                            new_edge_ids.push(id);
                        }
                        None => {
                            let id = self.edges.len();
                            self.edges.push(SessionEdge {
                                from,
                                to,
                                capacity,
                                live: true,
                                slot: None,
                            });
                            new_edge_ids.push(id);
                            structural = true;
                        }
                    }
                }
            }
        }

        // The readout scale must track the *live* graph's maximum exactly
        // (see the `c_max` field docs), whichever way it moved.
        let new_c_max = self
            .edges
            .iter()
            .filter(|e| e.live)
            .map(|e| e.capacity)
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let scale_changed = new_c_max != self.c_max;
        self.c_max = new_c_max;

        // Route the staged state onto the cheapest mechanism.
        let live = self.edges.iter().filter(|e| e.live).count();
        let compact = force_compact || self.removed_debt > 16.max(live / 4);
        let replanned = structural || compact;
        if replanned {
            self.rebuild(!compact)?;
            self.replans += 1;
        } else {
            // Liveness flips first (excision/revival surgery), then the
            // level-source restamps — both value-only.
            flipped.sort_unstable();
            flipped.dedup();
            if !flipped.is_empty() {
                self.apply_surgeries(&flipped)?;
            }
            if scale_changed {
                // The voltage scale moved: every stamped level source gets
                // the new mapping — still value-only against the standing
                // factor.
                for id in 0..self.edges.len() {
                    self.restamp(id)?;
                }
                self.sync_metadata();
            } else if !touched.is_empty() {
                for &id in &touched {
                    self.restamp(id)?;
                }
                self.sync_metadata();
            }
        }

        // Solve the new operating point through the incremental machinery
        // (induced clamp flips ride the batched rank-k Woodbury path).
        self.clock += 1.0;
        let state_iterations = self.dc.solve_operating_point(self.clock)?;

        // Numeric consolidation budget: rank × reach vs. factor fill.
        let rank = self.dc.outstanding_rank();
        let consolidated = if rank > 0 {
            let n = self.dc.host().circuit().node_count() as f64;
            let fill = self.dc.report().factor_nnz as f64;
            if rank as f64 * n > CONSOLIDATION_FILL_FACTOR * fill {
                self.dc.consolidate()?;
                self.consolidations += 1;
                true
            } else {
                false
            }
        } else {
            false
        };

        // Delta-apply seam auto-audit: surgery just rewired handles, so a
        // metadata desync would first become visible here.
        if cfg!(debug_assertions) {
            if let Err(err) = self.audit_metadata() {
                panic!("{err}");
            }
        }

        Ok(DeltaReport {
            value: self.flow_value(),
            edge_flows: self.edge_flows(),
            new_edge_ids,
            replanned,
            consolidated,
            state_iterations,
        })
    }

    /// Audits the session's structural invariants: the shared
    /// factorization behind the universe substrate (see
    /// [`ohmflow_linalg::SparseLu::audit`]), the plan-cache shards, and
    /// the universe circuit's delta-surgery metadata checked against the
    /// stamped edge set (element-id uniqueness, edge/star membership
    /// closure). Debug builds also run the metadata audit automatically
    /// after every [`DeltaSession::apply_deltas`] batch.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured
    /// [`ohmflow_linalg::AuditError`].
    pub fn audit(&self) -> Result<(), ohmflow_linalg::AuditError> {
        self.tpl.dc_template().factor().audit()?;
        self.engine.audit_plan_cache()?;
        self.audit_metadata()
    }

    /// The delta-metadata half of [`DeltaSession::audit`]: reconstructs
    /// the universe build graph (every stamped session edge, slot order)
    /// and audits the universe circuit's surgery handles against it.
    fn audit_metadata(&self) -> Result<(), ohmflow_linalg::AuditError> {
        let meta = self.dc.host().delta_meta();
        let mut universe: Vec<Option<(usize, usize)>> = vec![None; meta.edges.len()];
        for e in &self.edges {
            if let Some(slot) = e.slot {
                if slot >= universe.len() || universe[slot].is_some() {
                    return Err(ohmflow_linalg::AuditError::new(
                        "DeltaMetadata",
                        "star-membership-closure",
                        format!("session edge slot {slot} out of range or claimed twice"),
                    ));
                }
                universe[slot] = Some((e.from, e.to));
            }
        }
        let mut edges = Vec::with_capacity(universe.len());
        for (slot, e) in universe.into_iter().enumerate() {
            match e {
                Some(pair) => edges.push(pair),
                None => {
                    return Err(ohmflow_linalg::AuditError::new(
                        "DeltaMetadata",
                        "star-membership-closure",
                        format!("universe edge {slot} has no owning session edge"),
                    ));
                }
            }
        }
        super::verify::audit_delta_metadata(meta, &edges, self.vertices, self.source, self.sink)
    }

    /// Flow value `|f|` (flow units) of the last applied batch.
    pub fn flow_value(&self) -> f64 {
        let sc = self.dc.host();
        sc.flow_value(|n| self.dc.voltage(n))
    }

    /// Per-edge flows in session id order (removed edges report 0).
    pub fn edge_flows(&self) -> Vec<f64> {
        let sc = self.dc.host();
        let universe = sc.edge_flows(|n| self.dc.voltage(n));
        self.edges
            .iter()
            .map(|e| match (e.live, e.slot) {
                (true, Some(u)) => universe[u],
                _ => 0.0,
            })
            .collect()
    }

    /// Total session edge ids assigned so far (live + removed).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Live edges.
    pub fn live_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.live).count()
    }

    /// The current live graph (session capacities, live edges only) — a
    /// fresh solver on this graph must agree with the session's flow
    /// value, which the proptest suite checks at 1e-9.
    ///
    /// # Errors
    ///
    /// Graph-construction errors (cannot occur for a validly-evolved
    /// session).
    pub fn live_graph(&self) -> Result<FlowNetwork, AnalogError> {
        let mut g = FlowNetwork::new(self.vertices, self.source, self.sink)?;
        for e in self.edges.iter().filter(|e| e.live) {
            g.add_edge(e.from, e.to, e.capacity)?;
        }
        Ok(g)
    }

    /// Re-keys the session against the plan cache (times the batch calls
    /// it when structure changed or structural debt blew its budget).
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Budget-driven numeric consolidations so far.
    pub fn consolidations(&self) -> u64 {
        self.consolidations
    }

    /// Outstanding Woodbury rank carried by the underlying session.
    pub fn outstanding_rank(&self) -> usize {
        self.dc.outstanding_rank()
    }

    /// Linear-algebra effort counters of the underlying session.
    pub fn stats(&self) -> FrozenDcStats {
        self.dc.stats()
    }

    /// Structured accounting of the underlying session.
    pub fn report(&self) -> SolveReport {
        self.dc.report()
    }

    /// Rejects any delta the staged state cannot absorb, before anything
    /// is mutated.
    fn validate(&self, batch: &DeltaBatch) -> Result<(), AnalogError> {
        // Liveness/insert checks must track the batch's own effects
        // (remove then re-insert then set-capacity is legal in one
        // batch), so run the staging logic against a shadow liveness map.
        let mut live: Vec<bool> = self.edges.iter().map(|e| e.live).collect();
        let mut revived: Vec<usize> = Vec::new();
        let invalid = |what: String| AnalogError::InvalidConfig { what };
        let mut pending = 0usize;
        for &delta in batch.deltas() {
            match delta {
                GraphDelta::SetCapacity { edge, capacity } => {
                    if edge >= live.len() + pending {
                        return Err(invalid(format!("SetCapacity on unknown edge {edge}")));
                    }
                    let is_live = live.get(edge).copied().unwrap_or(true);
                    if !is_live {
                        return Err(invalid(format!("SetCapacity on removed edge {edge}")));
                    }
                    if capacity <= 0 {
                        return Err(invalid(format!("capacity {capacity} must be positive")));
                    }
                }
                GraphDelta::RemoveEdge { edge } => {
                    if edge >= live.len() + pending {
                        return Err(invalid(format!("RemoveEdge on unknown edge {edge}")));
                    }
                    match live.get_mut(edge) {
                        Some(l) if *l => *l = false,
                        Some(_) => {
                            return Err(invalid(format!("RemoveEdge on removed edge {edge}")))
                        }
                        // An edge inserted earlier in this batch: the
                        // staging pass handles it as remove-after-insert.
                        None => {
                            return Err(invalid(format!(
                                "RemoveEdge on edge {edge} inserted in the same batch"
                            )))
                        }
                    }
                }
                GraphDelta::InsertEdge { from, to, capacity } => {
                    if from >= self.vertices || to >= self.vertices {
                        return Err(invalid(format!(
                            "InsertEdge {from}->{to} exceeds {} vertices",
                            self.vertices
                        )));
                    }
                    if from == to {
                        return Err(invalid(format!("InsertEdge self-loop at {from}")));
                    }
                    if capacity <= 0 {
                        return Err(invalid(format!("capacity {capacity} must be positive")));
                    }
                    // Mirror the staging pass's revive-or-append choice so
                    // later ids validate consistently.
                    let revivable = self.edges.iter().enumerate().position(|(i, e)| {
                        !live[i]
                            && e.slot.is_some()
                            && e.from == from
                            && e.to == to
                            && !revived.contains(&i)
                    });
                    match revivable {
                        Some(i) => {
                            live[i] = true;
                            revived.push(i);
                        }
                        None => pending += 1,
                    }
                }
            }
        }
        Ok(())
    }

    /// The clamp voltage an edge's widgets should hold under the current
    /// session scale (see [`clamp_volts_for`]).
    fn clamp_volts_of(&self, edge: &SessionEdge) -> f64 {
        clamp_volts_for(self.mapping, self.v_dd, self.v_on, self.c_max, edge)
    }

    /// Applies exact excision/revival surgery for the given session edges
    /// (whose liveness just flipped): couplings cut to open (or restored
    /// to `r`), ghost anchors closed (or reopened), and every affected
    /// interior endpoint's star retuned to its live incident degree — all
    /// landing as one batched rank-k Woodbury push against the standing
    /// factorization ([`FrozenDcSession::set_resistances`]).
    fn apply_surgeries(&mut self, edges: &[usize]) -> Result<(), AnalogError> {
        let mut changes: Vec<(ElementId, f64)> = Vec::new();
        let mut endpoints: Vec<usize> = Vec::new();
        {
            let meta = self.dc.host().delta_meta();
            for &id in edges {
                let e = self.edges[id];
                let Some(slot) = e.slot else { continue };
                // Circulation edges stamp nothing: liveness is bookkeeping.
                let Some(s) = meta.edges[slot] else { continue };
                let (coupling, anchor) = if e.live {
                    (meta.r, f64::INFINITY)
                } else {
                    (f64::INFINITY, meta.r)
                };
                changes.push((s.u_coupling, coupling));
                if let Some(vc) = s.v_coupling {
                    changes.push((vc, coupling));
                }
                changes.push((s.anchor, anchor));
                for w in [e.from, e.to] {
                    if w != self.source && w != self.sink {
                        endpoints.push(w);
                    }
                }
            }
            endpoints.sort_unstable();
            endpoints.dedup();
            for &w in &endpoints {
                let Some(star) = meta.stars[w] else { continue };
                let n_live = self.live_widget_degree(w);
                // A fully-orphaned widget is electrically isolated; its
                // star keeps its last value (any nonzero value is fine).
                if n_live > 0 {
                    changes.push((star.element, meta.star_resistance(n_live)));
                }
            }
        }
        self.dc.set_resistances(&changes)?;
        Ok(())
    }

    /// Live non-circulation edges incident to `w` — the `n` a fresh build
    /// of the live graph would size `w`'s star negative resistor for.
    fn live_widget_degree(&self, w: usize) -> usize {
        self.edges
            .iter()
            .filter(|e| {
                e.live && e.to != self.source && e.from != self.sink && (e.from == w || e.to == w)
            })
            .count()
    }

    /// Restamps one session edge's level source for its current
    /// capacity/liveness (no-op for circulation edges and compacted-away
    /// slots).
    fn restamp(&mut self, id: usize) -> Result<(), AnalogError> {
        let edge = self.edges[id];
        let Some(slot) = edge.slot else {
            return Ok(());
        };
        let volts = self.clamp_volts_of(&edge);
        self.clamp_volts[slot] = volts;
        if let Some(src) = self.level_sources[slot] {
            self.dc
                .set_source_value(src, SourceValue::dc(volts - self.v_on))?;
        }
        Ok(())
    }

    /// Pushes the mirrored clamp voltages and readout scale into the
    /// substrate metadata after value-only restamps.
    fn sync_metadata(&mut self) {
        let volts = self.clamp_volts.clone();
        let scale = self.v_dd / self.c_max;
        self.dc.host_mut().set_capacity_values(volts, scale);
    }

    /// Re-keys the session: builds the universe graph (live edges, plus
    /// still-stamped removed edges unless compacting), fetches its plan
    /// through the sharded cache, restamps every level source under the
    /// session scale, and swaps in a fresh owning session. All state is
    /// constructed before anything is committed, so a failure leaves the
    /// session serving its previous universe.
    fn rebuild(&mut self, keep_removed: bool) -> Result<(), AnalogError> {
        let parts = rekey(
            &self.engine,
            self.mapping,
            self.v_dd,
            self.v_on,
            self.c_max,
            self.vertices,
            self.source,
            self.sink,
            &self.edges,
            keep_removed,
        )?;

        // Commit.
        self.edges = parts.edges;
        self.dc = parts.dc;
        self.level_sources = parts.level_sources;
        self.clamp_volts = parts.clamp_volts;
        self.tpl = parts.tpl;
        if !keep_removed {
            self.removed_debt = 0;
        }
        Ok(())
    }
}

/// Freshly-built universe state handed back by [`rekey`].
struct Parts {
    edges: Vec<SessionEdge>,
    dc: FrozenDcSession<SubstrateCircuit>,
    level_sources: Vec<Option<ElementId>>,
    clamp_volts: Vec<f64>,
    tpl: Arc<SubstrateTemplate>,
}

/// The clamp voltage an edge's widgets should hold under the session
/// scale: the capacity mapping for live edges, `v_on` for removed ones.
/// `v_on` puts the removed edge's level source at exactly **zero volts**:
/// its excised widget cluster then contains no source at all, so the
/// off-state diode leakage (`1/r_off`) that couples the cluster to the
/// level source and ground carries exactly zero current and the
/// cluster's operating point is identically zero — fresh solves of the
/// live graph (where the widgets do not exist) see the same electrical
/// network to machine precision. Both clamp diodes sit at `v_ak = 0`,
/// solidly off.
fn clamp_volts_for(
    mapping: CapacityMapping,
    v_dd: f64,
    v_on: f64,
    c_max: f64,
    edge: &SessionEdge,
) -> f64 {
    if !edge.live {
        return v_on;
    }
    match mapping {
        CapacityMapping::Exact => ExactScaling::new(v_dd, c_max).to_volts(edge.capacity as f64),
        CapacityMapping::Quantized { levels } => {
            Quantizer::new(levels, v_dd, c_max).quantize(edge.capacity as f64)
        }
    }
}

/// Builds the universe graph (live edges, plus still-stamped removed
/// edges unless compacting), plans it through the engine's sharded
/// cache, restamps every level source under the **session** scale
/// (overriding the instantiation's own graph-derived scale), and opens
/// an owning incremental session on the result.
#[allow(clippy::too_many_arguments)]
fn rekey(
    engine: &AnalogMaxFlow,
    mapping: CapacityMapping,
    v_dd: f64,
    v_on: f64,
    c_max: f64,
    vertices: usize,
    source: usize,
    sink: usize,
    edges: &[SessionEdge],
    keep_removed: bool,
) -> Result<Parts, AnalogError> {
    let mut shadow = edges.to_vec();
    let mut g = FlowNetwork::new(vertices, source, sink)?;
    for e in shadow.iter_mut() {
        e.slot = if e.live || (keep_removed && e.slot.is_some()) {
            let u = g.edge_count();
            g.add_edge(e.from, e.to, e.capacity)?;
            Some(u)
        } else {
            None
        };
    }

    let mut clamp_volts = vec![0.0f64; g.edge_count()];
    for e in &shadow {
        if let Some(u) = e.slot {
            clamp_volts[u] = clamp_volts_for(mapping, v_dd, v_on, c_max, e);
        }
    }

    let tpl = engine.template_for(&g)?;
    let mut sc = tpl.instantiate(&g)?;
    for (u, src) in tpl.level_sources().iter().enumerate() {
        if let Some(id) = src {
            sc.circuit_mut()
                .set_source_value(*id, SourceValue::dc(clamp_volts[u] - v_on))?;
        }
    }
    sc.set_capacity_values(clamp_volts.clone(), v_dd / c_max);

    // The template instantiation stamps every widget live: re-apply the
    // excision surgery for removed-but-kept edges (and the matching star
    // retunes) directly on the circuit before it is factored.
    let meta = sc.delta_meta().clone();
    if meta.retunable {
        for e in &shadow {
            if e.live {
                continue;
            }
            let Some(u) = e.slot else { continue };
            let Some(s) = meta.edges[u] else { continue };
            sc.circuit_mut()
                .set_resistance(s.u_coupling, f64::INFINITY)?;
            if let Some(vc) = s.v_coupling {
                sc.circuit_mut().set_resistance(vc, f64::INFINITY)?;
            }
            sc.circuit_mut().set_resistance(s.anchor, meta.r)?;
        }
        for (w, star) in meta.stars.iter().enumerate() {
            let Some(star) = star else { continue };
            let n_live = shadow
                .iter()
                .filter(|e| {
                    e.live && e.to != source && e.from != sink && (e.from == w || e.to == w)
                })
                .count();
            if n_live > 0 && n_live != star.n_base {
                sc.circuit_mut()
                    .set_resistance(star.element, meta.star_resistance(n_live))?;
            }
        }
    }

    let dc = engine
        .dc_solver()
        .session_from_host(sc, tpl.dc_template())?
        .with_max_rank(SESSION_MAX_RANK)
        .with_deferred_consolidation();
    let level_sources = tpl.level_sources().to_vec();
    Ok(Parts {
        edges: shadow,
        dc,
        level_sources,
        clamp_volts,
        tpl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::facade::{MaxFlowSolver, SolveOptions};
    use ohmflow_graph::generators;

    fn agree(session: &DeltaSession, solver: &MaxFlowSolver, tag: &str) {
        let g = session.live_graph().unwrap();
        let fresh = solver.solve_fresh(&g).unwrap();
        let v = session.flow_value();
        assert!(
            (v - fresh.value).abs() < 1e-9,
            "{tag}: session {v} vs fresh {}",
            fresh.value
        );
        // Analog solutions overshoot capacity by the clamp knee (~1e-4
        // relative) — physics, not surgery error. The repo-wide
        // feasibility tolerance is 0.05; value agreement is the tight
        // check above.
        assert!(
            g.validate_flow(&session.edge_flows_live(), 0.05).is_some(),
            "{tag}: session flows infeasible"
        );
    }

    impl DeltaSession {
        /// Live-edge flows in live-graph edge order (test readout helper).
        fn edge_flows_live(&self) -> Vec<f64> {
            let all = self.edge_flows();
            self.edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.live)
                .map(|(i, _)| all[i])
                .collect()
        }
    }

    #[test]
    fn capacity_drift_stays_value_only() {
        let g = generators::fig5a();
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let mut session = solver.delta_session(&g).unwrap();
        let opening = session.apply_deltas(&DeltaBatch::new()).unwrap();
        assert!(!opening.replanned);
        agree(&session, &solver, "opening");
        for (round, cap) in [(0usize, 5i64), (1, 1), (2, 9), (3, 2)] {
            let edge = round % g.edge_count();
            let report = session
                .apply_deltas(&DeltaBatch::new().set_capacity(edge, cap))
                .unwrap();
            assert!(!report.replanned, "round {round}: capacity must not re-key");
            agree(&session, &solver, &format!("capacity round {round}"));
        }
        assert_eq!(session.replans(), 0, "value-only stream must never re-key");
    }

    #[test]
    fn remove_revive_and_novel_insert() {
        let g = generators::fig5a();
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let mut session = solver.delta_session(&g).unwrap();

        // Removal: exact excision surgery, no re-key.
        let report = session
            .apply_deltas(&DeltaBatch::new().remove_edge(0))
            .unwrap();
        assert!(!report.replanned, "removal must stay value-only");
        assert_eq!(report.edge_flows[0], 0.0, "removed edge carries no flow");
        agree(&session, &solver, "after removal");

        // Revive of the still-stamped edge: value restamp, same id back.
        let (from, to, _) = {
            let e = &g.edges()[0];
            (e.from, e.to, e.capacity)
        };
        let report = session
            .apply_deltas(&DeltaBatch::new().insert_edge(from, to, 7))
            .unwrap();
        assert!(!report.replanned, "revive must stay value-only");
        assert_eq!(report.new_edge_ids, vec![0], "revive reuses the id");
        agree(&session, &solver, "after revive");
        assert_eq!(session.replans(), 0);

        // A novel endpoint pair re-keys against the plan cache.
        let report = session
            .apply_deltas(&DeltaBatch::new().insert_edge(1, 3, 3))
            .unwrap();
        assert!(report.replanned, "novel structure must re-key");
        assert_eq!(report.new_edge_ids, vec![g.edge_count()]);
        agree(&session, &solver, "after novel insert");
        assert_eq!(session.replans(), 1);
    }

    #[test]
    fn structural_debt_triggers_compaction() {
        let g = generators::parallel_paths(25, 4).unwrap();
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let mut session = solver.delta_session(&g).unwrap();

        // Remove 16 source legs (edge 2i is source->v_i): at debt 16 the
        // budget (> max(16, live/4)) has not blown yet.
        let mut batch = DeltaBatch::new();
        for path in 0..16 {
            batch = batch.remove_edge(2 * path);
        }
        let report = session.apply_deltas(&batch).unwrap();
        assert!(!report.replanned, "16 removals fit the debt budget");
        agree(&session, &solver, "debt at budget");

        // The 17th removal blows the budget: the re-key compacts the
        // removed widgets out of the universe.
        let report = session
            .apply_deltas(&DeltaBatch::new().remove_edge(32))
            .unwrap();
        assert!(report.replanned, "17th removal must compact");
        assert_eq!(session.replans(), 1);
        agree(&session, &solver, "after compaction");

        // A compacted edge's widgets are gone: re-inserting those
        // endpoints is novel structure now, under a fresh session id.
        let report = session
            .apply_deltas(&DeltaBatch::new().insert_edge(0, 1, 4))
            .unwrap();
        assert!(report.replanned, "post-compaction insert is novel");
        assert_eq!(report.new_edge_ids, vec![session.edge_count() - 1]);
        agree(&session, &solver, "after post-compaction insert");
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let g = generators::fig5a();
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let mut session = solver.delta_session(&g).unwrap();
        let before = session.apply_deltas(&DeltaBatch::new()).unwrap().value;

        let bad: Vec<DeltaBatch> = vec![
            DeltaBatch::new().set_capacity(99, 5),
            DeltaBatch::new().set_capacity(0, 0),
            DeltaBatch::new().remove_edge(99),
            DeltaBatch::new().remove_edge(0).remove_edge(0),
            DeltaBatch::new().insert_edge(0, 0, 5),
            DeltaBatch::new().insert_edge(0, 99, 5),
            DeltaBatch::new().insert_edge(1, 2, -3),
            // Valid prefix, invalid tail: nothing may stick.
            DeltaBatch::new().set_capacity(0, 8).remove_edge(77),
        ];
        for (i, batch) in bad.iter().enumerate() {
            let err = session.apply_deltas(batch);
            assert!(
                matches!(err, Err(AnalogError::InvalidConfig { .. })),
                "batch {i} must be rejected, got {err:?}"
            );
        }
        let after = session.apply_deltas(&DeltaBatch::new()).unwrap().value;
        assert!(
            (before - after).abs() < 1e-12,
            "rejected batches must leave the session untouched"
        );
        assert_eq!(session.replans(), 0);
    }

    #[test]
    fn capacity_growth_rescales_every_level_source() {
        let g = generators::fig5a();
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let mut session = solver.delta_session(&g).unwrap();
        // Blow far past the opening c_max: the scale change restamps all
        // stamped level sources but must stay value-only.
        let report = session
            .apply_deltas(&DeltaBatch::new().set_capacity(0, 1000))
            .unwrap();
        assert!(!report.replanned, "scale growth must stay value-only");
        agree(&session, &solver, "after scale growth");
        // Shrinking back moves the live maximum (and thus the scale)
        // down again — another full restamp, still value-only.
        let report = session
            .apply_deltas(&DeltaBatch::new().set_capacity(0, 2))
            .unwrap();
        assert!(!report.replanned);
        agree(&session, &solver, "after shrink under grown scale");
    }

    #[test]
    fn delta_walk_consolidates_and_stays_exact() {
        let g = generators::layered(4, 4, 9, 7).unwrap();
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let mut session = solver.delta_session(&g).unwrap();
        // A long drift walk whose capacity swings force clamp-state flips
        // (Woodbury rank) on most batches; the numeric budget must
        // eventually consolidate and correctness must never degrade.
        let edges = g.edge_count();
        for step in 0..40usize {
            let edge = (step * 7 + 3) % edges;
            let cap = 1 + ((step * 11) % 9) as i64;
            session
                .apply_deltas(&DeltaBatch::new().set_capacity(edge, cap))
                .unwrap();
            if step % 8 == 0 {
                agree(&session, &solver, &format!("walk step {step}"));
            }
        }
        agree(&session, &solver, "walk end");
        assert_eq!(session.replans(), 0, "capacity walk must never re-key");
    }
}
