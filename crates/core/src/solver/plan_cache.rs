//! The concurrent topology-keyed plan cache behind
//! [`AnalogMaxFlow`](super::AnalogMaxFlow): lock-striped shards selected
//! by topology fingerprint, per-shard LRU eviction with byte accounting,
//! and single-flight cold-path deduplication.
//!
//! The design (see `DESIGN.md`, "Serving tier"):
//!
//! * **Fingerprint-first probes.** A hit costs one streaming pass over the
//!   graph to fingerprint it ([`TemplateKey::fingerprint`]), one shard
//!   mutex, one hash-map probe and one allocation-free edge-list
//!   verification ([`TemplateKey::matches_graph`]) — never an intermediate
//!   edge `Vec`, never a per-edge `Hash` dispatch, never a rebuilt
//!   [`TemplateKey`].
//! * **Sharding.** The shard index comes from the fingerprint's *high*
//!   bits (the probe map consumes the full value), so concurrent requests
//!   for different topologies contend on different mutexes.
//! * **Collision safety.** Entries whose fingerprint matches but whose
//!   full key does not verify against the probing graph coexist in one
//!   bucket (`Vec` per fingerprint); a collision costs a failed
//!   comparison, never a wrong plan.
//! * **Single flight.** The first requester of a new topology installs a
//!   `Building` slot and runs the symbolic cold path outside the lock;
//!   concurrent requesters of the same topology block on the slot's
//!   condvar and share the one built [`Arc<SubstrateTemplate>`]. If the
//!   build fails, waiters fall back to building independently (failure
//!   paths are not deduplicated — they must each observe their own error).
//! * **LRU + byte accounting.** Each resident plan is costed from its
//!   factorization fill (`factor_nnz`) and edge count; when a shard
//!   exceeds its share of the configured capacity, least-recently-used
//!   `Ready` plans are evicted (in-flight `Building` slots never are).
//!   Evicted plans keep serving callers that still hold their `Arc`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ohmflow_graph::FlowNetwork;

use crate::template::{SubstrateTemplate, TemplateKey};
use crate::AnalogError;

/// Default total capacity: generous enough that eviction only engages on
/// serving-tier workloads cycling through many large topologies.
pub(crate) const DEFAULT_CAPACITY_BYTES: usize = 512 << 20;

/// Shard count (power of two; the shard index is the fingerprint's top
/// bits). 16 mutexes keep 8–16 concurrent threads on distinct locks with
/// high probability while the per-shard LRU scans stay tiny.
const SHARD_COUNT: usize = 16;

/// Aggregate observability counters of the plan cache, surfaced through
/// [`PlanReport`](super::facade::PlanReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Fingerprint-probed lookups served from a resident plan.
    pub hits: u64,
    /// Lookups that paid (or waited on) the symbolic cold path.
    pub misses: u64,
    /// Plans evicted under byte-capacity pressure.
    pub evictions: u64,
    /// Bytes currently accounted to resident plans.
    pub resident_bytes: usize,
    /// Resident (ready) plans across all shards.
    pub resident_plans: usize,
}

/// Single-flight gate: the cold-path builder publishes its result here and
/// wakes every waiter. `None` signals a failed build (waiters retry
/// independently — `AnalogError` is not shared across requesters).
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Debug)]
enum GateState {
    Building,
    Done(Option<Arc<SubstrateTemplate>>),
}

impl Gate {
    fn new() -> Self {
        Gate {
            state: Mutex::new(GateState::Building),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Option<Arc<SubstrateTemplate>> {
        let mut st = self
            .state
            .lock()
            .expect("invariant: gate lock is never poisoned");
        while matches!(*st, GateState::Building) {
            st = self
                .cv
                .wait(st)
                .expect("invariant: gate lock is never poisoned");
        }
        match &*st {
            GateState::Done(r) => r.clone(),
            GateState::Building => unreachable!("wait loop exits on Done"),
        }
    }

    fn complete(&self, r: Option<Arc<SubstrateTemplate>>) {
        *self
            .state
            .lock()
            .expect("invariant: gate lock is never poisoned") = GateState::Done(r);
        self.cv.notify_all();
    }
}

#[derive(Debug)]
enum Slot {
    Ready {
        tpl: Arc<SubstrateTemplate>,
        cost: usize,
        last_used: u64,
    },
    Building(Arc<Gate>),
}

#[derive(Debug)]
struct Entry {
    key: TemplateKey,
    slot: Slot,
}

#[derive(Debug, Default)]
struct Shard {
    /// Fingerprint → colliding entries (almost always length 1).
    buckets: HashMap<u64, Vec<Entry>>,
    /// Bytes accounted to `Ready` entries.
    bytes: usize,
    /// Monotone LRU clock (bumped per access, not per nanosecond —
    /// recency order is all eviction needs).
    tick: u64,
}

impl Shard {
    fn ready_count(&self) -> usize {
        self.buckets
            .values()
            .flatten()
            .filter(|e| matches!(e.slot, Slot::Ready { .. }))
            .count()
    }

    /// Evicts least-recently-used ready plans until the shard fits its
    /// budget, always retaining at least one ready plan (a single plan
    /// larger than the budget stays resident rather than thrashing).
    fn evict_to(&mut self, budget: usize, evictions: &AtomicU64) {
        while self.bytes > budget && self.ready_count() > 1 {
            let victim = self
                .buckets
                .iter()
                .flat_map(|(&fp, bucket)| {
                    bucket
                        .iter()
                        .enumerate()
                        .filter_map(move |(i, e)| match e.slot {
                            Slot::Ready {
                                cost, last_used, ..
                            } => Some((last_used, fp, i, cost)),
                            Slot::Building(_) => None,
                        })
                })
                .min_by_key(|&(last_used, ..)| last_used);
            let Some((_, fp, i, cost)) = victim else {
                break;
            };
            let bucket = self
                .buckets
                .get_mut(&fp)
                .expect("invariant: the eviction victim bucket is resident");
            bucket.swap_remove(i);
            if bucket.is_empty() {
                self.buckets.remove(&fp);
            }
            self.bytes -= cost;
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// What one probe decided while the shard lock was held.
enum Probe {
    Hit(Arc<SubstrateTemplate>),
    Wait(Arc<Gate>),
    Build(Arc<Gate>),
}

/// The sharded, single-flight, LRU plan cache. Shared across
/// [`AnalogMaxFlow`](super::AnalogMaxFlow) clones by `Arc`.
#[derive(Debug)]
pub(crate) struct PlanCache {
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard byte budget (total capacity / shard count).
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Bytes one resident plan pins, estimated from its dominant artifacts:
/// the numeric factor values + indices (`factor_nnz`), the edge-keyed
/// skeleton bookkeeping, and a fixed overhead for the structures around
/// them. An estimate is all eviction needs — relative order across plans
/// is what matters.
fn plan_cost(tpl: &SubstrateTemplate) -> usize {
    let dc = tpl.dc_template();
    dc.factor().factor_nnz() * 16 + tpl.key().edge_count() * 64 + 4096
}

impl PlanCache {
    pub(crate) fn new(capacity_bytes: usize) -> Self {
        let shards: Vec<Mutex<Shard>> = (0..SHARD_COUNT)
            .map(|_| Mutex::new(Shard::default()))
            .collect();
        PlanCache {
            shards: shards.into_boxed_slice(),
            shard_budget: (capacity_bytes / SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        // Top bits: independent of the bucket map's use of the low bits.
        &self.shards[(fingerprint >> 60) as usize & (SHARD_COUNT - 1)]
    }

    /// The plan for `g` under the given factorization identity, plus
    /// whether it was served from the cache. `build` runs the symbolic
    /// cold path at most once per topology across all concurrent callers
    /// (single flight); its failure is returned to the caller that ran it
    /// and waiters retry independently.
    pub(crate) fn get_or_build(
        &self,
        fingerprint: u64,
        g: &FlowNetwork,
        ordering: ohmflow_circuit::ColumnOrdering,
        precision: ohmflow_circuit::Precision,
        build: impl FnOnce() -> Result<Arc<SubstrateTemplate>, AnalogError>,
    ) -> Result<(Arc<SubstrateTemplate>, bool), AnalogError> {
        let probe = {
            let mut shard = self
                .shard(fingerprint)
                .lock()
                .expect("invariant: shard lock is never poisoned");
            shard.tick += 1;
            let tick = shard.tick;
            let bucket = shard.buckets.entry(fingerprint).or_default();
            let found = bucket
                .iter_mut()
                .find(|e| e.key.verifies(g, ordering, precision))
                .map(|e| match &mut e.slot {
                    Slot::Ready { tpl, last_used, .. } => {
                        *last_used = tick;
                        Probe::Hit(Arc::clone(tpl))
                    }
                    Slot::Building(gate) => Probe::Wait(Arc::clone(gate)),
                });
            match found {
                Some(p) => p,
                None => {
                    // Full key construction is cold-path work, but the
                    // `Building` slot must carry it so concurrent probes
                    // can verify against it.
                    let gate = Arc::new(Gate::new());
                    bucket.push(Entry {
                        key: TemplateKey::with_lu(g, ordering, precision),
                        slot: Slot::Building(Arc::clone(&gate)),
                    });
                    Probe::Build(gate)
                }
            }
        };

        match probe {
            Probe::Hit(tpl) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok((tpl, true))
            }
            Probe::Wait(gate) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                match gate.wait() {
                    Some(tpl) => Ok((tpl, false)),
                    // The deduplicated build failed; observe our own error
                    // (or success, if the failure was transient) without
                    // re-registering.
                    None => build().map(|tpl| (tpl, false)),
                }
            }
            Probe::Build(gate) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                match build() {
                    Ok(tpl) => {
                        let cost = plan_cost(&tpl);
                        {
                            let mut shard = self
                                .shard(fingerprint)
                                .lock()
                                .expect("invariant: shard lock is never poisoned");
                            shard.tick += 1;
                            let tick = shard.tick;
                            if let Some(entry) = shard
                                .buckets
                                .get_mut(&fingerprint)
                                .and_then(|b| b.iter_mut().find(|e| e.is_building(&gate)))
                            {
                                entry.slot = Slot::Ready {
                                    tpl: Arc::clone(&tpl),
                                    cost,
                                    last_used: tick,
                                };
                                shard.bytes += cost;
                            }
                            let budget = self.shard_budget;
                            shard.evict_to(budget, &self.evictions);
                        }
                        gate.complete(Some(Arc::clone(&tpl)));
                        Ok((tpl, false))
                    }
                    Err(e) => {
                        {
                            let mut shard = self
                                .shard(fingerprint)
                                .lock()
                                .expect("invariant: shard lock is never poisoned");
                            if let Some(bucket) = shard.buckets.get_mut(&fingerprint) {
                                bucket.retain(|e| !e.is_building(&gate));
                                if bucket.is_empty() {
                                    shard.buckets.remove(&fingerprint);
                                }
                            }
                        }
                        gate.complete(None);
                        Err(e)
                    }
                }
            }
        }
    }

    /// A resident plan for `g` under the given factorization identity, if
    /// one is cached — a probe that never builds, never waits on an
    /// in-flight cold path, and never registers a `Building` slot. The
    /// adaptive small-instance solve path uses this: a tiny graph rides a
    /// plan someone already paid for, but a cache miss must not commit it
    /// to the cold path.
    pub(crate) fn peek(
        &self,
        fingerprint: u64,
        g: &FlowNetwork,
        ordering: ohmflow_circuit::ColumnOrdering,
        precision: ohmflow_circuit::Precision,
    ) -> Option<Arc<SubstrateTemplate>> {
        let mut shard = self
            .shard(fingerprint)
            .lock()
            .expect("invariant: shard lock is never poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let hit = shard.buckets.get_mut(&fingerprint).and_then(|bucket| {
            bucket
                .iter_mut()
                .find(|e| e.key.verifies(g, ordering, precision))
                .and_then(|e| match &mut e.slot {
                    Slot::Ready { tpl, last_used, .. } => {
                        *last_used = tick;
                        Some(Arc::clone(tpl))
                    }
                    Slot::Building(_) => None,
                })
        });
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Aggregate counters plus a residency snapshot.
    pub(crate) fn stats(&self) -> PlanCacheStats {
        let mut resident_bytes = 0;
        let mut resident_plans = 0;
        for shard in self.shards.iter() {
            let shard = shard
                .lock()
                .expect("invariant: shard lock is never poisoned");
            resident_bytes += shard.bytes;
            resident_plans += shard.ready_count();
        }
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes,
            resident_plans,
        }
    }

    /// Audits the shard invariants:
    ///
    /// * `byte-accounting` — each shard's resident byte counter equals
    ///   the sum of its `Ready` entries' costs (a desync either thrashes
    ///   the LRU or lets the cache grow without bound);
    /// * `fingerprint-shard` — every bucket key's fingerprint selects the
    ///   shard holding it (a misplaced bucket is unreachable by probes:
    ///   a permanently resident leak).
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured
    /// [`ohmflow_linalg::AuditError`].
    pub(crate) fn audit(&self) -> Result<(), ohmflow_linalg::AuditError> {
        for (idx, shard) in self.shards.iter().enumerate() {
            let shard = shard
                .lock()
                .expect("invariant: shard lock is never poisoned");
            let mut ready_bytes = 0usize;
            for (&fp, bucket) in &shard.buckets {
                let home = (fp >> 60) as usize & (SHARD_COUNT - 1);
                if home != idx {
                    return Err(ohmflow_linalg::AuditError::new(
                        "PlanCache",
                        "fingerprint-shard",
                        format!("fingerprint {fp:#018x} lives in shard {idx}, selects {home}"),
                    ));
                }
                for e in bucket {
                    if let Slot::Ready { cost, .. } = e.slot {
                        ready_bytes += cost;
                    }
                }
            }
            if ready_bytes != shard.bytes {
                return Err(ohmflow_linalg::AuditError::new(
                    "PlanCache",
                    "byte-accounting",
                    format!(
                        "shard {idx}: accounted {} bytes, resident plans cost {ready_bytes}",
                        shard.bytes
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Resident plan count (test observability).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.stats().resident_plans
    }
}

impl Entry {
    fn is_building(&self, gate: &Arc<Gate>) -> bool {
        matches!(&self.slot, Slot::Building(g) if Arc::ptr_eq(g, gate))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    use ohmflow_circuit::{ColumnOrdering, Precision};
    use ohmflow_graph::generators;

    use super::*;
    use crate::builder::BuildOptions;
    use crate::params::SubstrateParams;

    fn params_and_opts() -> (SubstrateParams, BuildOptions) {
        let mut params = SubstrateParams::table1();
        params.v_flow = 50.0 * params.v_dd;
        (params, BuildOptions::ideal())
    }

    /// A path graph with `n` vertices — distinct `n`, distinct topology.
    fn path_graph(n: usize) -> FlowNetwork {
        let caps: Vec<i64> = (1..n as i64).collect();
        generators::path(&caps).expect("path graph")
    }

    fn lu_identity() -> (ColumnOrdering, Precision) {
        (ColumnOrdering::default(), Precision::default())
    }

    fn build_template(g: &FlowNetwork) -> Result<Arc<SubstrateTemplate>, AnalogError> {
        let (params, opts) = params_and_opts();
        SubstrateTemplate::with_lu_options(g, &params, &opts, opts.lu_options()).map(Arc::new)
    }

    fn lookup(
        cache: &PlanCache,
        g: &FlowNetwork,
    ) -> Result<(Arc<SubstrateTemplate>, bool), AnalogError> {
        let (ordering, precision) = lu_identity();
        let fp = TemplateKey::fingerprint(g, ordering, precision);
        cache.get_or_build(fp, g, ordering, precision, || build_template(g))
    }

    /// Mutation-kill: desync a shard's resident-byte counter and assert
    /// the audit blames `byte-accounting`.
    #[test]
    fn mutation_byte_accounting_desync_is_caught() {
        let cache = PlanCache::new(DEFAULT_CAPACITY_BYTES);
        let g = path_graph(6);
        lookup(&cache, &g).expect("plan");
        cache.audit().expect("pristine cache audits clean");

        let (ordering, precision) = lu_identity();
        let fp = TemplateKey::fingerprint(&g, ordering, precision);
        cache.shard(fp).lock().expect("shard").bytes += 1;
        let err = cache.audit().expect_err("desync must be caught");
        assert_eq!(err.invariant, "byte-accounting");
    }

    /// Mutation-kill: move a bucket (and its accounted bytes) into a
    /// shard its fingerprint does not select and assert the audit blames
    /// `fingerprint-shard`.
    #[test]
    fn mutation_misplaced_bucket_is_caught() {
        let cache = PlanCache::new(DEFAULT_CAPACITY_BYTES);
        let g = path_graph(6);
        lookup(&cache, &g).expect("plan");

        let (ordering, precision) = lu_identity();
        let fp = TemplateKey::fingerprint(&g, ordering, precision);
        let home = (fp >> 60) as usize & (SHARD_COUNT - 1);
        let wrong = (home + 1) % SHARD_COUNT;
        let (bucket, bytes) = {
            let mut shard = cache.shards[home].lock().expect("shard");
            let bucket = shard.buckets.remove(&fp).expect("resident bucket");
            let bytes = std::mem::take(&mut shard.bytes);
            (bucket, bytes)
        };
        {
            let mut shard = cache.shards[wrong].lock().expect("shard");
            shard.buckets.insert(fp, bucket);
            shard.bytes += bytes;
        }
        let err = cache.audit().expect_err("misplaced bucket must be caught");
        assert_eq!(err.invariant, "fingerprint-shard");
    }

    /// M concurrent requesters of one brand-new topology run the symbolic
    /// cold path exactly once and share the one built template.
    #[test]
    fn single_flight_deduplicates_concurrent_cold_paths() {
        const THREADS: usize = 8;
        let cache = Arc::new(PlanCache::new(DEFAULT_CAPACITY_BYTES));
        let g = Arc::new(path_graph(7));
        let builds = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        let (ordering, precision) = lu_identity();
        let fp = TemplateKey::fingerprint(&g, ordering, precision);

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (cache, g, builds, barrier) = (
                    Arc::clone(&cache),
                    Arc::clone(&g),
                    Arc::clone(&builds),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    cache
                        .get_or_build(fp, &g, ordering, precision, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so every other thread
                            // reaches the gate while the build is in flight.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            build_template(&g)
                        })
                        .expect("plan")
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "cold path must run once across {THREADS} concurrent requesters"
        );
        let (first, _) = &results[0];
        for (tpl, from_cache) in &results {
            assert!(Arc::ptr_eq(tpl, first), "all requesters share one plan");
            assert!(!from_cache, "single-flight members all paid the miss");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, THREADS as u64);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.resident_plans, 1);

        let (tpl, hit) = lookup(&cache, &g).expect("warm probe");
        assert!(hit, "the built plan must now be a fingerprint hit");
        assert!(Arc::ptr_eq(&tpl, first));
        assert_eq!(cache.stats().hits, 1);
    }

    /// Many threads hammering a mix of hot and cold topologies: every
    /// returned plan must match a fresh single-threaded build of the same
    /// graph in `factor_nnz` and `block_count`, and its stored key must
    /// verify against the graph it was served for.
    #[test]
    fn concurrent_mixed_workload_never_serves_a_wrong_plan() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 12;
        let sizes: Vec<usize> = vec![4, 5, 6, 7, 8, 9];
        let expected: Vec<(usize, usize)> = sizes
            .iter()
            .map(|&n| {
                let tpl = build_template(&path_graph(n)).expect("fresh template");
                let dc = tpl.dc_template();
                (dc.factor().factor_nnz(), dc.symbolic().block_count())
            })
            .collect();

        let cache = Arc::new(PlanCache::new(DEFAULT_CAPACITY_BYTES));
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                let sizes = sizes.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for round in 0..ROUNDS {
                        // Stagger the per-thread visit order so hot hits and
                        // cold builds interleave across threads.
                        let i = (t + round) % sizes.len();
                        let g = path_graph(sizes[i]);
                        let (tpl, _) = lookup(&cache, &g).expect("plan");
                        assert!(
                            tpl.key().matches_graph(&g),
                            "served plan's key must verify against the probing graph"
                        );
                        let dc = tpl.dc_template();
                        assert_eq!(
                            (dc.factor().factor_nnz(), dc.symbolic().block_count()),
                            expected[i],
                            "thread {t} round {round}: plan for n={} diverged",
                            sizes[i]
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let stats = cache.stats();
        assert_eq!(stats.resident_plans, sizes.len());
        assert_eq!(
            stats.hits + stats.misses,
            (THREADS * ROUNDS) as u64,
            "every lookup is either a hit or a miss"
        );
        assert!(stats.hits > 0, "repeat lookups must hit");
    }

    /// Under a tiny byte budget the cache evicts LRU plans (counting them)
    /// but keeps serving correct plans — an evicted topology is simply
    /// rebuilt on its next request.
    #[test]
    fn eviction_under_byte_pressure_recovers_by_rebuilding() {
        // ~1 byte per shard: any shard holding two ready plans evicts down
        // to one.
        let cache = PlanCache::new(SHARD_COUNT);
        let sizes: Vec<usize> = (4..24).collect();
        for &n in &sizes {
            lookup(&cache, &path_graph(n)).expect("cold build");
        }
        let stats = cache.stats();
        assert!(
            stats.evictions > 0,
            "20 topologies over a {SHARD_COUNT}-byte budget must evict (stats: {stats:?})"
        );
        assert!(
            stats.resident_plans < sizes.len(),
            "residency must shrink under pressure"
        );
        assert!(
            stats.resident_plans >= 1,
            "each populated shard retains at least one plan"
        );

        // Every topology — evicted or resident — still resolves to a
        // correct plan.
        for &n in &sizes {
            let g = path_graph(n);
            let (tpl, _) = lookup(&cache, &g).expect("post-eviction lookup");
            assert!(tpl.key().matches_graph(&g), "n={n}");
        }
    }

    /// A failed build is not cached: the `Building` slot is removed, the
    /// error reaches the caller, and the next request builds fresh.
    #[test]
    fn failed_build_leaves_no_residue() {
        let cache = PlanCache::new(DEFAULT_CAPACITY_BYTES);
        let g = path_graph(5);
        let (ordering, precision) = lu_identity();
        let fp = TemplateKey::fingerprint(&g, ordering, precision);
        let err = cache.get_or_build(fp, &g, ordering, precision, || {
            Err(AnalogError::InvalidConfig {
                what: "synthetic build failure".to_owned(),
            })
        });
        assert!(matches!(err, Err(AnalogError::InvalidConfig { .. })));
        assert_eq!(cache.len(), 0, "failed builds must not stay resident");

        let (tpl, hit) = lookup(&cache, &g).expect("retry builds fresh");
        assert!(!hit);
        assert!(tpl.key().matches_graph(&g));
        assert_eq!(cache.len(), 1);
    }
}
