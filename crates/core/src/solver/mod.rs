//! The analog max-flow solver engine and its staged public facade.
//!
//! This module holds the **engine**: [`AnalogMaxFlow`] carries the
//! configuration, the topology-keyed template cache and the simulation
//! machinery (quasi-static complementarity solve, relaxation transient,
//! full-MNA ablation) — the §3.2 "computing max-flow on the crossbar"
//! procedure. The **public staged API** lives in [`facade`]:
//! [`MaxFlowSolver`](facade::MaxFlowSolver) →
//! [`Plan`](facade::Plan) → [`Instance`](facade::Instance) →
//! [`Session`](facade::Session) — the one public solve surface (the
//! deprecated `AnalogMaxFlow` solve shims were removed after the facade
//! was pinned equivalent by the `facade_equivalence` suite).
//!
//! The engine's plan cache (`plan_cache`) is sharded and concurrent:
//! fingerprint-first lookups, single-flight cold paths, per-shard LRU
//! eviction — the serving tier (`ohmflow-serve`) drives it from many
//! threads at once.

use std::sync::Arc;

use ohmflow_circuit::{
    solve_frozen_dc, Circuit, CircuitError, DcSolver, DcTemplate, ElementId, FrozenDcCache,
    FrozenDcSession, LuOptions, NodeId, RefactorStrategy, SolveReport, TransientAnalysis,
    TransientOptions, Waveform, WaveformSet,
};
use ohmflow_graph::FlowNetwork;

use crate::builder::{
    self, BuildOptions, BuildStats, Drive, NegativeResistorImpl, SubstrateCircuit,
};
use crate::params::SubstrateParams;
use crate::template::{self, SubstrateTemplate, TemplateKey};
use crate::AnalogError;

pub mod delta;
pub mod facade;
mod plan_cache;
pub(crate) mod verify;

pub use delta::{DeltaBatch, DeltaReport, DeltaSession, GraphDelta};
pub use plan_cache::PlanCacheStats;
pub(crate) use plan_cache::{PlanCache, DEFAULT_CAPACITY_BYTES};

/// Edge-count threshold of the adaptive solve-path choice: below it, a
/// graph whose topology is not already planned solves from scratch
/// instead of paying the per-edge template instantiation (measured ~1.7×
/// slower than a direct build on Fig. 10-sweep-sized instances —
/// BENCH_PR9.json, `small_n`). A *cached* plan is still used (its cold
/// path is sunk), and explicit [`facade::MaxFlowSolver::plan`] /
/// `solve_many` grouping still plan small topologies on purpose — the
/// threshold only stops one-shot `solve` calls from building plans they
/// will never amortize.
pub const SMALL_INSTANCE_EDGES: usize = 48;

/// How the substrate is simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveMode {
    /// One DC solve at the final `V_flow` — the exact steady state,
    /// without convergence-time information. Fast path for large graphs
    /// and for solution-quality studies.
    QuasiStatic,
    /// Transient from the rising edge of `V_flow` (§5.1), simulated with
    /// the **quasi-static relaxation model**: edge-node voltages follow the
    /// instantaneous constrained equilibrium through the op-amp dominant-
    /// pole lag `τ = A/(2π·GBW)`, and clamp diodes switch when the *lagged*
    /// voltages cross their thresholds — reproducing the paper's cascaded
    /// switching narrative (§2.4, Fig. 5c) with GBW- and graph-dependent
    /// convergence times. Yields the convergence time (settling to within
    /// `settle_fraction` of the final flow value). `window`/`dt` of `None`
    /// are chosen automatically (the window doubles until the circuit has
    /// visibly settled, mirroring the paper's worst-case profiling).
    ///
    /// Why not integrate the raw MNA dynamics? A reproduction finding of
    /// this crate (see `DESIGN.md` and the full-MNA ablation mode): the
    /// literal Fig. 2 network with parasitic capacitance is dynamically
    /// unstable — every constraint widget is a *pure integrator* of
    /// constraint violation, and the cascaded integrators ring without
    /// bound under the op-amp lag.
    Transient {
        /// Simulation window in seconds (`None` = auto).
        window: Option<f64>,
        /// Time step in seconds (`None` = auto).
        dt: Option<f64>,
    },
    /// The raw full-MNA transient of the literal circuit — retained as the
    /// instability ablation (expect divergence or clamp-pinned spurious
    /// states; see [`SolveMode::Transient`]).
    TransientFullMna {
        /// Simulation window in seconds.
        window: f64,
        /// Time step in seconds.
        dt: f64,
    },
}

/// Linear-algebra backend of the relaxation transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelaxationEngine {
    /// The incremental frozen-DC engine (default): one persistent
    /// [`FrozenDcSession`] carries the MNA structure, factorization and
    /// buffers across every time step; clamp-diode switches are absorbed
    /// as Woodbury rank-1 updates (built through reach-based sparse
    /// triangular half-solves) with a periodic refactorization for
    /// numerical hygiene — numeric-only, level-scheduled across rayon
    /// workers on large systems unless the solve is already running inside
    /// a batch worker. See `DESIGN.md`.
    #[default]
    Incremental,
    /// The historical reference path: every step calls
    /// [`solve_frozen_dc`], which rebuilds the MNA structure and
    /// refactors from scratch whenever the clamp configuration changed.
    /// Retained for regression testing and benchmarking the incremental
    /// engine against.
    FullRefactor,
}

/// Full configuration of an [`AnalogMaxFlow`] solver.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogConfig {
    /// Substrate design parameters (Table 1).
    pub params: SubstrateParams,
    /// Circuit construction options.
    pub build: BuildOptions,
    /// Simulation mode.
    pub mode: SolveMode,
    /// Convergence band for the §5.1 settle-time measurement (0.001 =
    /// "within 0.1 % of the final value").
    pub settle_fraction: f64,
    /// Relaxation-transient solve backend.
    pub engine: RelaxationEngine,
}

impl AnalogConfig {
    /// Ideal configuration: exact capacities, ideal negative resistors,
    /// quasi-static solve. Under these assumptions the substrate solves
    /// max-flow *optimally* (§2.3's proof), which the test-suite checks.
    ///
    /// Note on `V_flow`: §2.3 proves the solution increases monotonically
    /// with `V_flow` and saturates at the max-flow optimum once every
    /// binding constraint is clamped. Table 1's 3 V assumes the paper's
    /// unnormalized voltage scale; with capacities normalized into
    /// `[0, V_dd]` more headroom is needed, so the solver configurations
    /// drive at `50 × V_dd` (documented deviation, see `DESIGN.md`).
    pub fn ideal() -> Self {
        let mut params = SubstrateParams::table1();
        params.v_flow = 50.0 * params.v_dd;
        AnalogConfig {
            params,
            build: BuildOptions::ideal(),
            mode: SolveMode::QuasiStatic,
            settle_fraction: 1e-3,
            engine: RelaxationEngine::default(),
        }
    }

    /// The §5.1 evaluation configuration: Table 1 parameters with the given
    /// GBW, quantized capacities, op-amp NICs, parasitics, transient solve.
    pub fn evaluation(gbw_hz: f64) -> Self {
        let mut params = SubstrateParams::with_gbw(gbw_hz);
        params.v_flow = 50.0 * params.v_dd; // see `ideal()` on drive headroom
        let build = BuildOptions::evaluation(&params);
        AnalogConfig {
            params,
            build,
            mode: SolveMode::Transient {
                window: None,
                dt: None,
            },
            settle_fraction: 1e-3,
            engine: RelaxationEngine::default(),
        }
    }

    /// Like [`AnalogConfig::evaluation`] but solved quasi-statically — same
    /// solution quality (quantization + finite gain), no transient cost.
    /// Used by error sweeps over many instances.
    pub fn evaluation_quasi_static(gbw_hz: f64) -> Self {
        let mut cfg = Self::evaluation(gbw_hz);
        cfg.mode = SolveMode::QuasiStatic;
        cfg.build.parasitics = false;
        cfg
    }
}

/// Facade-level linear-algebra tuning carried by the engine: the pieces of
/// [`facade::SolveOptions`] that [`AnalogConfig`] never expressed. The
/// legacy constructors leave it at the defaults, so shim and facade paths
/// share one code path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct SolverTuning {
    /// Full factorization-options override. `None` derives the options
    /// from the build's `lu_ordering` (the legacy behavior); the facade
    /// sets `Some` so [`facade::SolveOptions::lu`] is the single source of
    /// truth.
    pub lu: Option<LuOptions>,
    /// Numeric-refactorization scheduling for every session the engine
    /// creates.
    pub refactor: RefactorStrategy,
    /// Per-phase wall-clock attribution on engine-created sessions.
    pub phase_timing: bool,
    /// Plan-cache byte capacity (`None` = [`DEFAULT_CAPACITY_BYTES`]).
    pub plan_cache_bytes: Option<usize>,
}

/// Result of an analog max-flow solve.
#[derive(Debug, Clone)]
pub struct AnalogSolution {
    /// Flow value `|f|` in flow units, from the steady-state node voltages.
    pub value: f64,
    /// Flow value recovered from `I_flow` via Eq. (7a) — the measurement a
    /// physical substrate actually performs.
    pub value_from_current: f64,
    /// Per-edge flows (edge-id order, flow units).
    pub edge_flows: Vec<f64>,
    /// §5.1 convergence time in seconds (transient mode only): the time
    /// from the rising edge of `V_flow` until the flow value stays within
    /// `settle_fraction` of its final value.
    pub convergence_time: Option<f64>,
    /// Structural statistics of the built circuit.
    pub stats: BuildStats,
    /// Recorded waveforms (transient mode only).
    pub waveforms: Option<WaveformSet>,
    /// Structured linear-algebra accounting of the solve (state/step
    /// iterations, `nnz(L+U)`, BTF block count, optional phase times).
    /// Zeroed for paths with no DC engine behind them (the full-MNA
    /// ablation and the legacy full-refactor reference engine).
    pub report: SolveReport,
}

/// The analog max-flow solver.
///
/// Carries a topology-keyed cache of [`SubstrateTemplate`]s: solving many
/// instances of the same graph topology (capacity sweeps, variation seeds,
/// quantization studies) pays the cold path — substrate build, MNA
/// structure, ordering, symbolic factorization — once, and every further
/// solve on that topology is a value-only instantiation plus numeric-only
/// linear algebra. The cache is sharded and concurrent (`PlanCache`):
/// fingerprint-first lookups, single-flight cold paths, LRU eviction
/// under a byte budget. Clones share the cache.
///
/// See the crate-level quickstart for typical use (through the
/// [`facade::MaxFlowSolver`] staged API).
#[derive(Debug, Clone)]
pub struct AnalogMaxFlow {
    config: AnalogConfig,
    /// The sharded topology-keyed plan cache, shared across clones (and
    /// therefore across threads; shard locks are held only for probes and
    /// inserts, never across a symbolic build or a solve).
    cache: Arc<PlanCache>,
    /// Facade-injected linear-algebra tuning (defaults for the legacy
    /// constructors).
    tuning: SolverTuning,
}

impl AnalogMaxFlow {
    /// Creates a solver with the given configuration.
    pub fn new(config: AnalogConfig) -> Self {
        Self::with_tuning(config, SolverTuning::default())
    }

    /// [`AnalogMaxFlow::new`] with facade-level tuning — how
    /// [`facade::MaxFlowSolver`] threads the [`facade::SolveOptions`]
    /// pieces `AnalogConfig` cannot express.
    pub(crate) fn with_tuning(config: AnalogConfig, tuning: SolverTuning) -> Self {
        AnalogMaxFlow {
            config,
            cache: Arc::new(PlanCache::new(
                tuning.plan_cache_bytes.unwrap_or(DEFAULT_CAPACITY_BYTES),
            )),
            tuning,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalogConfig {
        &self.config
    }

    /// Audits the plan cache's shard invariants (LRU byte accounting,
    /// fingerprint→shard placement). Cheap — takes each shard lock once;
    /// safe to call from a serving health check.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured
    /// [`ohmflow_linalg::AuditError`].
    pub fn audit_plan_cache(&self) -> Result<(), ohmflow_linalg::AuditError> {
        self.cache.audit()
    }

    /// The factorization options every LU in this solver runs under: the
    /// facade's override when present, otherwise derived from the build
    /// options' ordering. One accessor so no path can pick a divergent
    /// copy.
    pub(crate) fn effective_lu_options(&self) -> LuOptions {
        self.tuning
            .lu
            .unwrap_or_else(|| self.effective_build_options().lu_options())
    }

    /// The circuit-level staged solver configured exactly as this engine:
    /// same factorization options, refactor scheduling and phase timing.
    fn dc_solver(&self) -> DcSolver {
        DcSolver::new()
            .lu_options(self.effective_lu_options())
            .refactor_strategy(self.tuning.refactor)
            .phase_timing(self.tuning.phase_timing)
    }

    /// The build options [`AnalogMaxFlow::solve`] actually uses: the solve
    /// mode constrains the drive shape (quasi-static needs DC; transient
    /// keeps a user-chosen step or soft-start ramp and only replaces an
    /// incompatible DC drive with the default step), and the relaxation
    /// model solves frozen-state DC points along the way, so it uses ideal
    /// negative resistors internally (exact in DC).
    fn effective_build_options(&self) -> BuildOptions {
        let mut build = self.config.build;
        build.drive = match (self.config.mode, build.drive) {
            (SolveMode::QuasiStatic, _) => Drive::Dc,
            (SolveMode::Transient { .. } | SolveMode::TransientFullMna { .. }, Drive::Dc) => {
                Drive::Step
            }
            (_, d) => d,
        };
        if matches!(self.config.mode, SolveMode::Transient { .. }) {
            build.negative_resistor = NegativeResistorImpl::Ideal;
            build.parasitics = false;
        }
        build
    }

    /// Returns the cached [`SubstrateTemplate`] for `g`'s topology,
    /// building (and caching) it on first use. The template is constructed
    /// with this solver's effective build options, so plan-path solves
    /// agree with cold-path solves by construction.
    ///
    /// # Errors
    ///
    /// Propagates template-construction failures.
    pub fn template_for(&self, g: &FlowNetwork) -> Result<Arc<SubstrateTemplate>, AnalogError> {
        self.template_for_inner(g).map(|(tpl, _)| tpl)
    }

    /// [`AnalogMaxFlow::template_for`] plus whether the template came out
    /// of the cache — the observable behind [`facade::Plan::cache_hit`].
    pub(crate) fn template_for_inner(
        &self,
        g: &FlowNetwork,
    ) -> Result<(Arc<SubstrateTemplate>, bool), AnalogError> {
        let build_opts = self.effective_build_options();
        let (ordering, precision) = (build_opts.lu_ordering, build_opts.lu_precision);
        // The hot path: one streaming fingerprint pass over the graph, one
        // sharded probe verified against the full stored key. Cold paths
        // run single-flight outside the shard lock; the full effective
        // factorization options (pivoting thresholds included) flow into
        // the template so the plan path can never factor under different
        // options than the cold path.
        let fingerprint = TemplateKey::fingerprint(g, ordering, precision);
        self.cache
            .get_or_build(fingerprint, g, ordering, precision, || {
                SubstrateTemplate::with_lu_options(
                    g,
                    &self.config.params,
                    &build_opts,
                    self.effective_lu_options(),
                )
                .map(Arc::new)
            })
    }

    /// Aggregate plan-cache counters (hits/misses/evictions + residency) —
    /// the observability behind [`facade::PlanReport`] and the serving
    /// tier's telemetry.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    /// Number of cached templates (test observability).
    #[cfg(test)]
    pub(crate) fn cached_template_count(&self) -> usize {
        self.cache.len()
    }

    /// The cold solve path: build the substrate for `g` and simulate it in
    /// the configured mode — the body of
    /// [`facade::MaxFlowSolver::solve_fresh`].
    pub(crate) fn solve_cold(&self, g: &FlowNetwork) -> Result<AnalogSolution, AnalogError> {
        let build = self.effective_build_options();
        let sc = builder::build(g, &self.config.params, &build)?;
        match self.config.mode {
            SolveMode::QuasiStatic => self.solve_quasi_static(&sc, None),
            SolveMode::Transient { window, dt } => {
                self.solve_transient_relaxation(&sc, g.vertex_count(), window, dt)
            }
            SolveMode::TransientFullMna { window, dt } => {
                self.solve_transient_full_mna(&sc, window, dt)
            }
        }
    }

    /// The template-cached solve path behind
    /// [`facade::MaxFlowSolver::solve`]: the first call on a topology pays
    /// the cold path, every further call is a value-only instantiation +
    /// numeric-only solve (with the previous solve's converged clamp
    /// states as a warm start). [`SolveMode::TransientFullMna`] has no
    /// templated fast path and falls back to the cold path.
    pub(crate) fn solve_templated_inner(
        &self,
        g: &FlowNetwork,
    ) -> Result<AnalogSolution, AnalogError> {
        if matches!(self.config.mode, SolveMode::TransientFullMna { .. }) {
            return self.solve_cold(g);
        }
        // Adaptive path choice: small instances only ride a plan that
        // already exists (see `SMALL_INSTANCE_EDGES`).
        if g.edge_count() < SMALL_INSTANCE_EDGES {
            return match self.cached_template_for(g) {
                Some(tpl) => {
                    let sc = tpl.instantiate(g)?;
                    self.solve_instance_parts(&sc, &tpl, g.vertex_count())
                }
                None => self.solve_cold(g),
            };
        }
        let tpl = self.template_for(g)?;
        let sc = tpl.instantiate(g)?;
        self.solve_instance_parts(&sc, &tpl, g.vertex_count())
    }

    /// The cached template for `g`'s topology if one is resident — a pure
    /// probe: never builds, never waits on an in-flight cold path.
    pub(crate) fn cached_template_for(&self, g: &FlowNetwork) -> Option<Arc<SubstrateTemplate>> {
        let build_opts = self.effective_build_options();
        let (ordering, precision) = (build_opts.lu_ordering, build_opts.lu_precision);
        let fingerprint = TemplateKey::fingerprint(g, ordering, precision);
        self.cache.peek(fingerprint, g, ordering, precision)
    }

    /// Simulates one template instantiation in the configured mode — the
    /// body of [`facade::Instance::solve`].
    pub(crate) fn solve_instance_parts(
        &self,
        sc: &SubstrateCircuit,
        tpl: &SubstrateTemplate,
        n_vertices: usize,
    ) -> Result<AnalogSolution, AnalogError> {
        match self.config.mode {
            SolveMode::QuasiStatic => self.solve_quasi_static(sc, Some(tpl)),
            SolveMode::Transient { window, dt } => {
                self.solve_transient_relaxation(sc, n_vertices, window, dt)
            }
            SolveMode::TransientFullMna { window, dt } => {
                self.solve_transient_full_mna(sc, window, dt)
            }
        }
    }

    /// Runs the relaxation transient on an already-built (and possibly
    /// perturbed) substrate circuit — the body behind
    /// [`facade::Problem::Built`] members — with an optional shared
    /// [`DcTemplate`] override (the batch fan-out path: one template, many
    /// same-structure members). The circuit must have been built with a
    /// step or ramp drive.
    pub(crate) fn solve_built_transient_shared(
        &self,
        sc: &SubstrateCircuit,
        n_vertices: usize,
        shared: Option<&DcTemplate>,
    ) -> Result<AnalogSolution, AnalogError> {
        let (window, dt) = match self.config.mode {
            SolveMode::Transient { window, dt } => (window, dt),
            _ => (None, None),
        };
        self.solve_transient_relaxation_shared(sc, n_vertices, window, dt, shared)
    }

    /// The quasi-static solve. When the circuit carries shared cold-path
    /// artifacts (template instantiations), the operating-point analysis is
    /// primed with them; with a [`SubstrateTemplate`] at hand, the clamp
    /// states converged last time seed the complementarity iteration and
    /// the converged states flow back as the next warm start.
    fn solve_quasi_static(
        &self,
        sc: &SubstrateCircuit,
        tpl: Option<&SubstrateTemplate>,
    ) -> Result<AnalogSolution, AnalogError> {
        let dcs = self.dc_solver();
        // Warm starts are value-keyed: only a solve of the *same* value
        // assignment may seed the complementarity iteration (see
        // `template::value_fingerprint`).
        let fingerprint = tpl.map(|_| template::value_fingerprint(sc));
        let warm = tpl.and_then(|t| {
            t.warm_states_for(
                fingerprint.expect("invariant: cached templates always come with a fingerprint"),
            )
        });
        let (sol, report) = match (sc.dc_template(), warm) {
            (Some(dc), warm) => {
                let plan = dcs.plan_from(Arc::clone(dc));
                match warm {
                    Some(w) => plan.solve_warm(sc.circuit(), &w),
                    None => plan.solve(sc.circuit()),
                }
            }
            (None, Some(w)) => dcs.solve_warm(sc.circuit(), &w),
            (None, None) => dcs.solve(sc.circuit()),
        }
        .map_err(AnalogError::from)?;
        if let (Some(t), Some(fp)) = (tpl, fingerprint) {
            t.store_warm_states(fp, sol.device_states());
        }
        let value = sc.flow_value(|n| sol.voltage(n));
        let i_flow = sol
            .source_current(sc.vflow_source())
            .expect("invariant: the flow-readout vsource has a branch current");
        Ok(AnalogSolution {
            value,
            value_from_current: sc.flow_value_from_current(i_flow, self.config.params.r_unit),
            edge_flows: sc.edge_flows(|n| sol.voltage(n)),
            convergence_time: None,
            stats: sc.stats(),
            waveforms: None,
            report,
        })
    }

    fn solve_transient_relaxation(
        &self,
        sc: &SubstrateCircuit,
        n_vertices: usize,
        window: Option<f64>,
        dt: Option<f64>,
    ) -> Result<AnalogSolution, AnalogError> {
        self.solve_transient_relaxation_shared(sc, n_vertices, window, dt, None)
    }

    fn solve_transient_relaxation_shared(
        &self,
        sc: &SubstrateCircuit,
        n_vertices: usize,
        window: Option<f64>,
        dt: Option<f64>,
        shared: Option<&DcTemplate>,
    ) -> Result<AnalogSolution, AnalogError> {
        let tau = self.config.params.opamp.time_constant();
        let mut t_stop = window.unwrap_or(tau * (20.0 + 0.05 * n_vertices as f64));
        let max_window = window.unwrap_or(t_stop * 64.0);

        loop {
            let step = dt.unwrap_or(tau / 25.0).min(t_stop / 50.0);
            let result = self.relaxation_run(sc, t_stop, step, shared)?;
            let settled_early = matches!(result.convergence_time, Some(ts) if ts < 0.8 * t_stop);
            if settled_early || t_stop >= max_window {
                if !settled_early && window.is_none() && t_stop >= max_window {
                    return Err(AnalogError::NotConverged { t_stop });
                }
                return Ok(result);
            }
            t_stop *= 4.0;
        }
    }

    /// One relaxation run: lagged edge voltages, lag-governed diode
    /// switching, frozen-state DC solves through the configured engine.
    fn relaxation_run(
        &self,
        sc: &SubstrateCircuit,
        t_stop: f64,
        dt: f64,
        shared: Option<&DcTemplate>,
    ) -> Result<AnalogSolution, AnalogError> {
        match self.config.engine {
            RelaxationEngine::Incremental => {
                // The session starts from shared cold-path artifacts when
                // available — an explicitly shared batch template first,
                // else whatever the instantiation attached to the circuit —
                // paying only a numeric-only refactorization instead of
                // structure + ordering + symbolic analysis. The staged
                // circuit facade threads the configured factorization
                // options, refactor scheduling and phase timing through.
                let dcs = self.dc_solver();
                let session = match shared.or(sc.dc_template().map(|t| &**t)) {
                    Some(tpl) => dcs.session_from(sc.circuit(), tpl),
                    None => dcs.session(sc.circuit()),
                };
                let mut eq = SessionEquilibrium {
                    session: session.map_err(AnalogError::from)?,
                };
                self.relaxation_run_with(sc, t_stop, dt, &mut eq)
            }
            RelaxationEngine::FullRefactor => {
                let mut eq = LegacyEquilibrium {
                    ckt: sc.circuit(),
                    cache: None,
                    last: None,
                };
                self.relaxation_run_with(sc, t_stop, dt, &mut eq)
            }
        }
    }

    /// The physics of the relaxation transient, generic (monomorphized —
    /// the equilibrium accessors sit in the per-step hot loop) over the
    /// backend so both engines run the *same* switching logic.
    fn relaxation_run_with<E: EquilibriumSolver>(
        &self,
        sc: &SubstrateCircuit,
        t_stop: f64,
        dt: f64,
        eq: &mut E,
    ) -> Result<AnalogSolution, AnalogError> {
        let ckt = sc.circuit();
        let tau = self.config.params.opamp.time_constant();
        let n_edges = sc.edge_nodes().len();
        let diode_ids = ckt.diode_ids();
        // Dense element-id → diode-position map (the hot loop below indexes
        // it twice per edge per step).
        let mut diode_pos = vec![usize::MAX; ckt.element_count()];
        for (i, d) in diode_ids.iter().enumerate() {
            diode_pos[d.index()] = i;
        }

        // Relaxed (observable) edge voltages start at 0 (V_flow low).
        let mut relaxed = vec![0.0f64; n_edges];
        let mut diode_on = vec![false; diode_ids.len()];
        // After a clamp releases, the node voltage needs ~1 τ to swing back
        // before the diode can physically conduct again; the cooldown
        // prevents unphysical per-step engage/release limit cycles on
        // perturbed circuits.
        let cooldown_steps = (tau / dt).ceil() as usize;
        let mut cooldown = vec![0usize; diode_ids.len()];
        let alpha = 1.0 - (-dt / tau).exp();

        let mut waves = WaveformSet::new(sc.edge_nodes(), &[sc.vflow_source()]);
        let steps = (t_stop / dt).round().max(1.0) as usize;
        waves.reserve(steps + 1);
        // Preallocated sample row: edge-node voltages then the V_flow
        // branch current (no per-step allocation).
        let mut sample: Vec<f64> = Vec::with_capacity(n_edges + 1);
        let edge_nodes = sc.edge_nodes();
        let r_on = self.config.params.diode.r_on;

        // Per-edge switching context, resolved once: diode positions,
        // clamp level, hysteresis band and the circuit node. Grounded
        // circulation edges (flow pinned at 0) carry no entry.
        struct EdgeClamp {
            edge: usize,
            lo_i: usize,
            hi_i: usize,
            clamp: f64,
            band: f64,
            node: NodeId,
        }
        let edge_clamps: Vec<EdgeClamp> = sc
            .clamp_diodes()
            .iter()
            .enumerate()
            .filter(|(_, (lo, _))| lo.is_valid())
            .map(|(e, &(lo, hi))| {
                let clamp = sc.clamp_volts(e);
                EdgeClamp {
                    edge: e,
                    lo_i: diode_pos[lo.index()],
                    hi_i: diode_pos[hi.index()],
                    clamp,
                    band: 1e-9 + 1e-6 * clamp.abs(),
                    node: edge_nodes[e],
                }
            })
            .collect();

        for k in 0..=steps {
            let t = k as f64 * dt;
            // Instantaneous constrained equilibrium for the present clamp
            // configuration.
            eq.solve(t, &diode_on).map_err(AnalogError::from)?;

            // One pass over the live edges: relax the physical voltage
            // toward the equilibrium with the op-amp dominant-pole lag
            // (raw, unclamped — the crossing of a clamp threshold is what
            // *engages* the diode), then update the clamp states. Grounded
            // circulation edges are skipped outright: their target voltage
            // is identically 0 and `relaxed` starts (and thus stays) at 0.
            //
            // Diode switching: clamps *engage* when the lagged voltage
            // crosses the threshold (§2.4's cascade) and *release* the
            // moment the constraint network reverses the clamp current in
            // the equilibrium — a diode stops conducting instantly when its
            // current would go negative.
            for ec in &edge_clamps {
                let e = ec.edge;
                let clamp = ec.clamp;
                let lo_i = ec.lo_i;
                let hi_i = ec.hi_i;
                let band = ec.band;
                let node = ec.node;
                let target = eq.voltage(node);
                relaxed[e] += alpha * (target - relaxed[e]);
                let v = relaxed[e];
                cooldown[lo_i] = cooldown[lo_i].saturating_sub(1);
                cooldown[hi_i] = cooldown[hi_i].saturating_sub(1);
                if diode_on[lo_i] {
                    // Lower clamp (gnd → x): conducting current −V(x)/r_on.
                    if -eq.voltage(node) / r_on < -1e-9 {
                        diode_on[lo_i] = false;
                        cooldown[lo_i] = cooldown_steps;
                    }
                } else if v < -band && cooldown[lo_i] == 0 {
                    diode_on[lo_i] = true;
                }
                if diode_on[hi_i] {
                    // Upper clamp (x → level): current (V(x) − clamp)/r_on.
                    if (eq.voltage(node) - clamp) / r_on < -1e-9 {
                        diode_on[hi_i] = false;
                        cooldown[hi_i] = cooldown_steps;
                    }
                } else if v > clamp + band && cooldown[hi_i] == 0 {
                    diode_on[hi_i] = true;
                }
                // An engaged diode holds the physical node at the clamp.
                if diode_on[hi_i] && relaxed[e] > clamp {
                    relaxed[e] = clamp;
                }
                if diode_on[lo_i] && relaxed[e] < 0.0 {
                    relaxed[e] = 0.0;
                }
            }

            sample.clear();
            sample.extend_from_slice(&relaxed);
            sample.push(eq.branch_current(sc.vflow_source()).unwrap_or(0.0));
            waves.push_sample(t, &sample);
        }

        // Flow-value series from the relaxed edge voltages.
        let times = waves.times().to_vec();
        let flow_series = flow_value_series(sc, &waves);
        let wf = Waveform::from_slices(&times, &flow_series);
        let settle = wf.settle_time(self.config.settle_fraction);

        let value = *flow_series
            .last()
            .expect("invariant: transient runs record at least one sample");
        let i_flow = eq
            .source_current(sc.vflow_source())
            .expect("invariant: the flow-readout vsource has a branch current");
        Ok(AnalogSolution {
            value,
            value_from_current: sc.flow_value_from_current(i_flow, self.config.params.r_unit),
            edge_flows: relaxed_to_flows(sc, &waves),
            convergence_time: settle,
            stats: sc.stats(),
            waveforms: Some(waves),
            report: eq.report(),
        })
    }

    /// The instability ablation: integrate the literal MNA dynamics.
    fn solve_transient_full_mna(
        &self,
        sc: &SubstrateCircuit,
        window: f64,
        dt: f64,
    ) -> Result<AnalogSolution, AnalogError> {
        let opts = TransientOptions::to_time(window)
            .with_step(dt)
            .probe_nodes(sc.edge_nodes().to_vec())
            .probe_current(sc.vflow_source());
        let waves = TransientAnalysis::new(sc.circuit(), opts)
            .map_err(AnalogError::from)?
            .run()
            .map_err(AnalogError::from)?;
        let times = waves.times().to_vec();
        let flow_series = flow_value_series(sc, &waves);
        let wf = Waveform::from_slices(&times, &flow_series);
        let settle = wf.settle_time(self.config.settle_fraction);
        let last = |n| waves.voltage(n).map(|w| w.last_value()).unwrap_or(0.0);
        let i_flow = waves
            .source_current_values(sc.vflow_source())
            .and_then(|v| v.last().copied())
            .unwrap_or(0.0);
        Ok(AnalogSolution {
            value: sc.flow_value(last),
            value_from_current: sc.flow_value_from_current(i_flow, self.config.params.r_unit),
            edge_flows: sc.edge_flows(last),
            convergence_time: settle,
            stats: sc.stats(),
            waveforms: Some(waves),
            report: SolveReport::default(),
        })
    }
}

/// One frozen-clamp equilibrium solve per relaxation step, abstracted so
/// the incremental and reference engines share the switching logic above.
trait EquilibriumSolver {
    /// Solves the operating point at `time` for the frozen `diode_on`
    /// assignment.
    fn solve(&mut self, time: f64, diode_on: &[bool]) -> Result<(), CircuitError>;
    /// Node voltage in the last solved point.
    fn voltage(&self, node: NodeId) -> f64;
    /// Branch current in the last solved point.
    fn branch_current(&self, id: ElementId) -> Option<f64>;
    /// Source current (negated branch current) in the last solved point.
    fn source_current(&self, id: ElementId) -> Option<f64> {
        self.branch_current(id).map(|i| -i)
    }
    /// Structured linear-algebra accounting of the run so far. The legacy
    /// reference engine has no session to report on and returns zeros.
    fn report(&self) -> SolveReport {
        SolveReport::default()
    }
}

/// The incremental engine: a persistent [`FrozenDcSession`].
struct SessionEquilibrium<'c> {
    session: FrozenDcSession<&'c Circuit>,
}

impl EquilibriumSolver for SessionEquilibrium<'_> {
    fn solve(&mut self, time: f64, diode_on: &[bool]) -> Result<(), CircuitError> {
        self.session.solve(time, diode_on)
    }

    fn voltage(&self, node: NodeId) -> f64 {
        self.session.voltage(node)
    }

    fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.session.branch_current(id)
    }

    fn report(&self) -> SolveReport {
        self.session.report()
    }
}

/// The reference engine: the historical per-step [`solve_frozen_dc`] path
/// (rebuilds the MNA structure each call, refactors on every clamp
/// change).
struct LegacyEquilibrium<'c> {
    ckt: &'c ohmflow_circuit::Circuit,
    cache: Option<FrozenDcCache>,
    last: Option<ohmflow_circuit::DcSolution>,
}

impl EquilibriumSolver for LegacyEquilibrium<'_> {
    fn solve(&mut self, time: f64, diode_on: &[bool]) -> Result<(), CircuitError> {
        self.last = Some(solve_frozen_dc(self.ckt, time, diode_on, &mut self.cache)?);
        Ok(())
    }

    fn voltage(&self, node: NodeId) -> f64 {
        self.last.as_ref().map_or(0.0, |s| s.voltage(node))
    }

    fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.last.as_ref().and_then(|s| s.branch_current(id))
    }
}

/// Converts the final recorded edge-node voltages of `waves` to flow units.
fn relaxed_to_flows(sc: &SubstrateCircuit, waves: &WaveformSet) -> Vec<f64> {
    sc.edge_nodes()
        .iter()
        .map(|&n| {
            waves
                .voltage(n)
                .map(|w| w.last_value() / sc.volts_per_flow())
                .unwrap_or(0.0)
        })
        .collect()
}

/// Computes the flow-value time series (flow units) from recorded edge-node
/// waveforms: net flow out of the source, sum over source-out edges minus
/// source-in edges.
///
/// The waveform column of each source-adjacent edge node is resolved
/// **once** and the samples are then summed column-wise — not one hash
/// lookup per `(sample, edge)` pair. Grounded circulation edges have no
/// recorded waveform and contribute zero.
pub fn flow_value_series(sc: &SubstrateCircuit, waves: &WaveformSet) -> Vec<f64> {
    let column = |&k: &usize| waves.voltage(sc.edge_node(k)).map(|w| w.values());
    let out_cols: Vec<&[f64]> = sc.source_out_edges().iter().filter_map(column).collect();
    let in_cols: Vec<&[f64]> = sc.source_in_edges().iter().filter_map(column).collect();
    let scale = 1.0 / sc.volts_per_flow();
    let mut series = vec![0.0f64; waves.len()];
    for col in &out_cols {
        for (s, v) in series.iter_mut().zip(*col) {
            *s += v;
        }
    }
    for col in &in_cols {
        for (s, v) in series.iter_mut().zip(*col) {
            *s -= v;
        }
    }
    for s in &mut series {
        *s *= scale;
    }
    series
}

#[cfg(test)]
mod tests {
    use super::facade::{MaxFlowSolver, Problem, SolveOptions};
    use crate::builder::CapacityMapping;
    use ohmflow_graph::generators;
    use ohmflow_maxflow::edmonds_karp;

    #[test]
    fn ideal_solver_is_optimal_on_fig5a() {
        let g = generators::fig5a();
        let sol = MaxFlowSolver::new(SolveOptions::ideal())
            .solve_fresh(&g)
            .unwrap();
        assert!(
            (sol.value - 2.0).abs() < 0.02,
            "analog value {} vs exact 2",
            sol.value
        );
        // The per-edge solution must be (nearly) feasible.
        assert!(g.validate_flow(&sol.edge_flows, 0.05).is_some());
        // Eq. (7a) readout agrees with the node-voltage readout.
        assert!(
            (sol.value_from_current - sol.value).abs() < 0.05,
            "current readout {} vs node readout {}",
            sol.value_from_current,
            sol.value
        );
    }

    #[test]
    fn ideal_solver_is_optimal_on_small_suite() {
        for (g, name) in [
            (generators::path(&[5, 2, 9]).unwrap(), "path"),
            (generators::parallel_paths(3, 4).unwrap(), "parallel"),
            (generators::fig15a(100), "fig15a"),
            (generators::layered(3, 2, 5, 1).unwrap(), "layered"),
        ] {
            let exact = edmonds_karp(&g).value as f64;
            let sol = MaxFlowSolver::new(SolveOptions::ideal())
                .solve_fresh(&g)
                .unwrap();
            let rel = (sol.value - exact).abs() / exact.max(1.0);
            assert!(rel < 0.02, "{name}: analog {} vs exact {exact}", sol.value);
        }
    }

    #[test]
    fn quantized_fig8_matches_paper() {
        // Fig. 8: N = 20, Vdd = 1 V → circuit solution 0.7 V, |f| ≈ 2.1,
        // a 5 % deviation from the exact value 2.
        let g = generators::fig5a();
        let mut opts = SolveOptions::ideal();
        opts.build.capacity_mapping = CapacityMapping::Quantized { levels: 20 };
        let sol = MaxFlowSolver::new(opts).solve_fresh(&g).unwrap();
        assert!(
            (sol.value - 2.1).abs() < 0.03,
            "quantized value {} vs paper's 2.1",
            sol.value
        );
    }

    #[test]
    fn transient_solver_converges_on_fig5a() {
        let g = generators::fig5a();
        let mut opts = SolveOptions::evaluation(10e9);
        opts.build.capacity_mapping = CapacityMapping::Exact;
        let sol = MaxFlowSolver::new(opts).solve_fresh(&g).unwrap();
        assert!(
            (sol.value - 2.0).abs() < 0.06,
            "transient value {}",
            sol.value
        );
        let tc = sol.convergence_time.expect("transient reports settle time");
        assert!(tc > 0.0 && tc < 1e-3, "convergence time {tc}");
        assert!(sol.waveforms.is_some());
    }

    #[test]
    fn templated_quasi_static_matches_cold_path() {
        let g = generators::fig5a();
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let cold = solver.solve_fresh(&g).unwrap();
        // fig5a sits under the small-instance threshold, where `solve`
        // only peeks the cache — plan explicitly so the warm path runs.
        solver.plan(&g).unwrap();
        // First plan-cached solve pays the cold path and caches; repeat
        // solves ride the warm path (primed factorization + warm states).
        for round in 0..3 {
            let warm = solver.solve(&g).unwrap();
            assert!(
                (warm.value - cold.value).abs() < 1e-9,
                "round {round}: templated {} vs cold {}",
                warm.value,
                cold.value
            );
            for (a, b) in warm.edge_flows.iter().zip(&cold.edge_flows) {
                assert!((a - b).abs() < 1e-9, "round {round}: {a} vs {b}");
            }
        }
        // Different capacities on the same topology reuse the plan.
        let g2 = g.scaled_capacities(2).unwrap();
        let cold2 = solver.solve_fresh(&g2).unwrap();
        let warm2 = solver.solve(&g2).unwrap();
        assert!((warm2.value - cold2.value).abs() < 1e-9);
        assert_eq!(
            solver.engine().cached_template_count(),
            1,
            "one topology, one plan"
        );
        // The staged path is the same code path as `solve`.
        let plan = solver.plan(&g2).unwrap();
        assert!(plan.cache_hit(), "second plan must hit the cache");
        let staged = plan.instance(&g2).unwrap().solve().unwrap();
        assert!((staged.value - warm2.value).abs() < 1e-12);
    }

    #[test]
    fn templated_transient_matches_cold_path() {
        let g = generators::fig5a();
        let mut opts = SolveOptions::evaluation(10e9);
        opts.build.capacity_mapping = CapacityMapping::Exact;
        let solver = MaxFlowSolver::new(opts);
        let cold = solver.solve_fresh(&g).unwrap();
        let warm = solver.solve(&g).unwrap();
        assert!(
            (warm.value - cold.value).abs() < 1e-9,
            "templated {} vs cold {}",
            warm.value,
            cold.value
        );
        let (tc, tw) = (
            cold.convergence_time.unwrap(),
            warm.convergence_time.unwrap(),
        );
        assert!(
            ((tc - tw) / tc).abs() < 1e-9,
            "settle time {tw} vs {tc} must match"
        );
    }

    #[test]
    fn batch_detects_same_topology_and_matches_sequential() {
        // Mixed batch: four capacity variants of one topology plus one
        // distinct topology (stays on the independent path).
        let base = generators::fig5a();
        let mut graphs: Vec<_> = (1..=4)
            .map(|s| base.scaled_capacities(s).unwrap())
            .collect();
        graphs.push(generators::path(&[5, 2, 9]).unwrap());
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let batch = solver.solve_many(graphs.iter().map(Problem::from));
        for (g, r) in graphs.iter().zip(&batch) {
            let seq = solver.solve_fresh(g).unwrap();
            let b = r.as_ref().expect("batch member solves");
            assert!(
                (b.value - seq.value).abs() < 1e-9,
                "batch {} vs sequential {}",
                b.value,
                seq.value
            );
        }
        // Only the repeated topology got a cached plan.
        assert_eq!(solver.engine().cached_template_count(), 1);
    }

    #[test]
    fn faster_gbw_converges_faster() {
        let g = generators::fig5a();
        let run = |gbw: f64| {
            let mut opts = SolveOptions::evaluation(gbw);
            opts.build.capacity_mapping = CapacityMapping::Exact;
            MaxFlowSolver::new(opts)
                .solve_fresh(&g)
                .unwrap()
                .convergence_time
                .unwrap()
        };
        let t10 = run(10e9);
        let t50 = run(50e9);
        assert!(
            t50 < t10,
            "50 GHz ({t50:.3e}s) should beat 10 GHz ({t10:.3e}s)"
        );
    }
}
