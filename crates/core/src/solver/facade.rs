//! The staged public API of the analog max-flow stack: **one
//! configuration, four stages.**
//!
//! ```text
//!  SolveOptions ──> MaxFlowSolver ──plan──> Plan ──instance──> Instance ──session──> Session
//!                        │                   │                    │
//!                        │                   │ (topology-keyed    │ solve() → AnalogSolution
//!                        │                   │  symbolic work,    │ (quasi-static or
//!                        │                   │  cached)           │  relaxation transient)
//!                        └── solve / solve_fresh / solve_many (conveniences over the stages)
//! ```
//!
//! The substrate of the paper is reconfigurable by design — one physical
//! fabric, many programmed instances — and the API mirrors that split:
//!
//! * [`MaxFlowSolver::plan`] runs the **topology-dependent cold path**
//!   once per graph shape (substrate build, MNA structure, AMD+BTF
//!   ordering, symbolic LU) and caches it by [`TemplateKey`];
//! * [`Plan::instance`] is a **value-only re-instantiation** — any
//!   capacity assignment on the planned topology is a source restamp away;
//! * [`Instance::solve`] runs the configured simulation mode and
//!   [`Instance::session`] opens an **incremental frozen-DC session** for
//!   clamp-flip / transient work that pays only numeric updates per step.
//!
//! This is the one public solve surface: the legacy entry points
//! (`AnalogMaxFlow::solve*`, the circuit crate's `DcAnalysis` /
//! `FrozenDcSession` constructors) were pinned equivalent at 1e-12 by the
//! `facade_equivalence` suite and then removed. The plan cache behind
//! [`MaxFlowSolver::plan`] is sharded and concurrent (fingerprint-first
//! lookups, single-flight cold paths, LRU eviction under
//! [`SolveOptions::plan_cache_bytes`]); the `ohmflow-serve` binary wraps
//! this facade as a multi-tenant network service.

use std::collections::HashMap;
use std::sync::Arc;

use ohmflow_circuit::{
    Circuit, ColumnOrdering, DcTemplate, ElementId, FrozenDcPhases, FrozenDcSession, FrozenDcStats,
    LuOptions, NodeId, RefactorStrategy, SolveReport,
};
use ohmflow_graph::FlowNetwork;
use rayon::prelude::*;

use crate::builder::{BuildOptions, CapacityMapping, SubstrateCircuit};
use crate::params::SubstrateParams;
use crate::template::{self, SubstrateTemplate, TemplateKey};
use crate::AnalogError;

use super::delta::DeltaSession;
use super::{
    AnalogConfig, AnalogMaxFlow, AnalogSolution, PlanCacheStats, RelaxationEngine, SolveMode,
    SolverTuning, DEFAULT_CAPACITY_BYTES,
};

/// The one consolidated configuration of the staged solver, absorbing what
/// used to be spread over `AnalogConfig`, `BuildOptions::lu_ordering`,
/// `LuOptions`, `RelaxationEngine`, `RefactorStrategy` and the session
/// phase-timing toggle.
///
/// **Option precedence:** [`SolveOptions::lu`] is the single source of
/// truth for factorization options. On [`MaxFlowSolver::new`] the options
/// are normalized — `build.lu_ordering` is overwritten with `lu.ordering`
/// — so the topology cache key, every template's symbolic plan and every
/// fallback fresh factorization agree on one ordering by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Substrate design parameters (Table 1).
    pub params: SubstrateParams,
    /// Circuit construction options. `build.lu_ordering` is kept in sync
    /// with [`SolveOptions::lu`] (see the precedence note above).
    pub build: BuildOptions,
    /// Simulation mode.
    pub mode: SolveMode,
    /// Convergence band for the §5.1 settle-time measurement.
    pub settle_fraction: f64,
    /// Relaxation-transient solve backend.
    pub engine: RelaxationEngine,
    /// Factorization options (column ordering, pivoting thresholds) for
    /// every LU in the stack — plans, sessions, cold fallbacks.
    pub lu: LuOptions,
    /// How numeric refactorizations schedule their column replay.
    pub refactor: RefactorStrategy,
    /// Per-phase wall-clock attribution on sessions (off by default:
    /// clock reads tax small systems).
    pub phase_timing: bool,
    /// Byte capacity of the sharded plan cache (LRU eviction engages
    /// above it; each resident plan is costed from its factorization
    /// fill). The default is generous — eviction only matters for
    /// long-running multi-tenant servers cycling through many topologies.
    pub plan_cache_bytes: usize,
}

impl SolveOptions {
    /// Ideal configuration: exact capacities, ideal negative resistors,
    /// quasi-static solve (see [`AnalogConfig::ideal`]).
    pub fn ideal() -> Self {
        Self::from_config(AnalogConfig::ideal())
    }

    /// The §5.1 evaluation configuration (see [`AnalogConfig::evaluation`]).
    pub fn evaluation(gbw_hz: f64) -> Self {
        Self::from_config(AnalogConfig::evaluation(gbw_hz))
    }

    /// Like [`SolveOptions::evaluation`] but solved quasi-statically (see
    /// [`AnalogConfig::evaluation_quasi_static`]).
    pub fn evaluation_quasi_static(gbw_hz: f64) -> Self {
        Self::from_config(AnalogConfig::evaluation_quasi_static(gbw_hz))
    }

    /// Lifts a legacy [`AnalogConfig`] into the consolidated options
    /// (factorization options derived from the build's ordering, default
    /// refactor scheduling, phase timing off).
    pub fn from_config(config: AnalogConfig) -> Self {
        SolveOptions {
            lu: config.build.lu_options(),
            params: config.params,
            build: config.build,
            mode: config.mode,
            settle_fraction: config.settle_fraction,
            engine: config.engine,
            refactor: RefactorStrategy::default(),
            phase_timing: false,
            plan_cache_bytes: DEFAULT_CAPACITY_BYTES,
        }
    }

    /// Sets the LU column ordering (through [`SolveOptions::lu`], the
    /// single source of truth).
    pub fn with_ordering(mut self, ordering: ColumnOrdering) -> Self {
        self.lu.ordering = ordering;
        self
    }

    /// Sets the numeric precision of the stored factor values (through
    /// [`SolveOptions::lu`], the single source of truth).
    /// [`Precision::F32Refined`](ohmflow_circuit::Precision) halves the
    /// factor's memory traffic and relies on the DC layer's f64
    /// iterative refinement to recover full accuracy.
    pub fn with_precision(mut self, precision: ohmflow_circuit::Precision) -> Self {
        self.lu.precision = precision;
        self
    }

    /// Sets the simulation mode.
    pub fn with_mode(mut self, mode: SolveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the relaxation-transient backend.
    pub fn with_engine(mut self, engine: RelaxationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the numeric-refactorization scheduling.
    pub fn with_refactor_strategy(mut self, strategy: RefactorStrategy) -> Self {
        self.refactor = strategy;
        self
    }

    /// Enables per-phase wall-clock attribution on sessions.
    pub fn with_phase_timing(mut self, on: bool) -> Self {
        self.phase_timing = on;
        self
    }

    /// Sets the plan cache's byte capacity (LRU eviction engages above
    /// it). Long-running servers cycling through many topologies set this
    /// to bound resident symbolic state; short-lived solvers keep the
    /// generous default.
    pub fn with_plan_cache_bytes(mut self, bytes: usize) -> Self {
        self.plan_cache_bytes = bytes;
        self
    }

    /// The options with the precedence rule applied: `build.lu_ordering`
    /// and `build.lu_precision` are overwritten with `lu.ordering` /
    /// `lu.precision`, so the build/template layer can never disagree
    /// with the factorization layer about the ordering or the stored
    /// scalar.
    pub fn normalized(&self) -> Self {
        let mut n = self.clone();
        n.build.lu_ordering = n.lu.ordering;
        n.build.lu_precision = n.lu.precision;
        n
    }

    /// Splits the options into the engine's legacy configuration plus the
    /// tuning it never expressed. Callers normalize first
    /// ([`SolveOptions::normalized`]).
    fn into_parts(self) -> (AnalogConfig, SolverTuning) {
        (
            AnalogConfig {
                params: self.params,
                build: self.build,
                mode: self.mode,
                settle_fraction: self.settle_fraction,
                engine: self.engine,
            },
            SolverTuning {
                lu: Some(self.lu),
                refactor: self.refactor,
                phase_timing: self.phase_timing,
                plan_cache_bytes: Some(self.plan_cache_bytes),
            },
        )
    }
}

/// Stage one: the configured solver. Cheap to clone; clones share the
/// topology-keyed plan cache (and therefore amortize cold paths across
/// threads).
///
/// # Example
///
/// ```
/// use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
/// use ohmflow_graph::generators::fig5a;
///
/// # fn main() -> Result<(), ohmflow::AnalogError> {
/// let g = fig5a();
/// let solver = MaxFlowSolver::new(SolveOptions::ideal());
/// let plan = solver.plan(&g)?;          // cold path, cached by topology
/// let solution = plan.instance(&g)?.solve()?;   // value-only + numeric work
/// assert!((solution.value - 2.0).abs() < 0.05); // exact max flow is 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MaxFlowSolver {
    engine: AnalogMaxFlow,
    opts: SolveOptions,
}

/// One unit of work for [`MaxFlowSolver::solve_problem`] /
/// [`MaxFlowSolver::solve_many`]: either a graph to map onto the substrate
/// or an already-built (typically perturbed) substrate realization.
#[derive(Debug, Clone, Copy)]
pub enum Problem<'a> {
    /// A max-flow instance; solved in the configured mode, sharing plans
    /// across same-topology batch members.
    Graph(&'a FlowNetwork),
    /// An already-built substrate realization of `graph` (the variation /
    /// tuning-sweep shape); solved with the **relaxation transient**, the
    /// way the physical circuit settles — same-structure members share one
    /// symbolic factorization.
    Built {
        /// The built (possibly perturbed) substrate circuit.
        circuit: &'a SubstrateCircuit,
        /// The graph the circuit realizes (readout scale + window sizing).
        graph: &'a FlowNetwork,
    },
}

impl<'a> From<&'a FlowNetwork> for Problem<'a> {
    fn from(g: &'a FlowNetwork) -> Self {
        Problem::Graph(g)
    }
}

impl MaxFlowSolver {
    /// Creates a staged solver from consolidated options (normalizing them
    /// first — see [`SolveOptions::normalized`]).
    pub fn new(opts: SolveOptions) -> Self {
        let opts = opts.normalized();
        let (config, tuning) = opts.clone().into_parts();
        MaxFlowSolver {
            engine: AnalogMaxFlow::with_tuning(config, tuning),
            opts,
        }
    }

    /// A staged solver over a legacy [`AnalogConfig`] — shorthand for
    /// `MaxFlowSolver::new(SolveOptions::from_config(config))`.
    pub fn from_config(config: AnalogConfig) -> Self {
        Self::new(SolveOptions::from_config(config))
    }

    /// The normalized options this solver runs under.
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }

    /// The underlying engine (legacy interop: its template cache is this
    /// solver's plan cache).
    pub fn engine(&self) -> &AnalogMaxFlow {
        &self.engine
    }

    /// Stage two: the topology-dependent cold path for `g`'s shape
    /// (substrate skeleton, MNA structure, fill-reducing ordering,
    /// symbolic + one numeric LU), served from the topology-keyed cache
    /// when the shape was planned before (see [`Plan::cache_hit`]).
    ///
    /// # Errors
    ///
    /// Propagates substrate-construction and factorization failures.
    pub fn plan(&self, g: &FlowNetwork) -> Result<Plan, AnalogError> {
        let (tpl, cache_hit) = self.engine.template_for_inner(g)?;
        Ok(Plan {
            engine: self.engine.clone(),
            tpl,
            cache_hit,
        })
    }

    /// Convenience over the stages: plan (cached) → instance → solve.
    /// Exactly the legacy `solve_templated` semantics, including the
    /// fall-back to the cold path for the full-MNA ablation mode (which
    /// has no templated fast path).
    ///
    /// # Errors
    ///
    /// Same as [`Instance::solve`].
    pub fn solve(&self, g: &FlowNetwork) -> Result<AnalogSolution, AnalogError> {
        self.engine.solve_templated_inner(g)
    }

    /// Solves `g` from scratch, bypassing the plan cache — the legacy
    /// `AnalogMaxFlow::solve` cold path, kept for solution-quality studies
    /// that must not share state across solves.
    ///
    /// # Errors
    ///
    /// Same as [`Instance::solve`].
    pub fn solve_fresh(&self, g: &FlowNetwork) -> Result<AnalogSolution, AnalogError> {
        self.engine.solve_cold(g)
    }

    /// Quasi-static operating point of an already-built substrate circuit
    /// (the non-ideality studies' entry point: perturb first, then solve).
    ///
    /// # Errors
    ///
    /// Same as [`Instance::solve`].
    pub fn solve_built(&self, sc: &SubstrateCircuit) -> Result<AnalogSolution, AnalogError> {
        self.engine.solve_quasi_static(sc, None)
    }

    /// Opens a streaming [`DeltaSession`] on `g`: one live analog
    /// substrate absorbing capacity and topology deltas batch by batch,
    /// with capacity updates as value-only restamps, clamp flips as
    /// batched rank-k Woodbury updates, and re-keys against this
    /// solver's plan cache only when the structure actually changes —
    /// see the [`delta`](super::delta) module docs for the full
    /// taxonomy and consolidation policy.
    ///
    /// # Errors
    ///
    /// Propagates substrate-construction and factorization failures of
    /// the opening solve.
    pub fn delta_session(&self, g: &FlowNetwork) -> Result<DeltaSession, AnalogError> {
        DeltaSession::open(self.engine.clone(), g)
    }

    /// Solves one [`Problem`]: graphs ride the plan cache, built circuits
    /// run the relaxation transient.
    ///
    /// # Errors
    ///
    /// Same as [`Instance::solve`].
    pub fn solve_problem(&self, problem: Problem<'_>) -> Result<AnalogSolution, AnalogError> {
        match problem {
            Problem::Graph(g) => self.solve(g),
            Problem::Built { circuit, graph } => {
                self.engine
                    .solve_built_transient_shared(circuit, graph.vertex_count(), None)
            }
        }
    }

    /// Solves many independent problems in parallel on all cores (rayon),
    /// preserving input order — the one batch entry point subsuming both
    /// legacy batch paths.
    ///
    /// Same-topology [`Problem::Graph`] members are detected by the
    /// streaming topology fingerprint (see [`TemplateKey::fingerprint`])
    /// and fanned out through one shared plan per
    /// topology: the cold path runs once per repeated topology and every
    /// member pays only a value-only instantiation plus numeric-only
    /// linear algebra (each rayon worker derives its own numeric factor —
    /// thread-local values, pointer-shared symbolic plan). Members whose
    /// topology appears once keep the independent cold path.
    /// [`Problem::Built`] members with one common circuit structure share
    /// one symbolic factorization the same way.
    pub fn solve_many<'a>(
        &self,
        problems: impl IntoIterator<Item = Problem<'a>>,
    ) -> Vec<Result<AnalogSolution, AnalogError>> {
        let problems: Vec<Problem<'a>> = problems.into_iter().collect();
        let engine = &self.engine;
        // The full-MNA ablation has no templated path at all.
        let full_mna = matches!(engine.config().mode, SolveMode::TransientFullMna { .. });
        let build_opts = engine.effective_build_options();
        let (ordering, precision) = (build_opts.lu_ordering, build_opts.lu_precision);

        // Graph grouping: fingerprint every graph member in one streaming
        // pass each (no intermediate edge Vec), count topologies, then
        // warm the plan cache — one cold path per repeated topology, all
        // distinct topologies planned in parallel (the sharded cache's
        // single-flight gates make concurrent template_for calls safe,
        // and distinct fingerprints never contend on one gate). The
        // par_iter below then hits the cache on every member, and a
        // topology whose plan construction failed falls back to the plain
        // path without every member re-attempting the expensive failed
        // build (batch error reporting stays per-member).
        let fps: Vec<Option<u64>> = problems
            .iter()
            .map(|p| match p {
                Problem::Graph(g) if !full_mna => {
                    Some(TemplateKey::fingerprint(g, ordering, precision))
                }
                _ => None,
            })
            .collect();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for fp in fps.iter().flatten() {
            *counts.entry(*fp).or_insert(0) += 1;
        }
        let mut warm: HashMap<u64, &FlowNetwork> = HashMap::new();
        for (i, fp) in fps.iter().enumerate() {
            if let (Some(fp), Problem::Graph(g)) = (fp, problems[i]) {
                if counts[fp] >= 2 {
                    warm.entry(*fp).or_insert(g);
                }
            }
        }
        let warm: Vec<(u64, &FlowNetwork)> = warm.into_iter().collect();
        let planned: HashMap<u64, bool> = warm
            .par_iter()
            .map(|&(fp, g)| (fp, engine.template_for(g).is_ok()))
            .collect::<Vec<(u64, bool)>>()
            .into_iter()
            .collect();

        // Built grouping: when every built member has the same circuit
        // structure (they almost always do: perturbed clones of one
        // build), the cold path runs once here and every session starts
        // from a numeric-only refactorization against the shared symbolic
        // plan.
        let built: Vec<&SubstrateCircuit> = problems
            .iter()
            .filter_map(|p| match p {
                Problem::Built { circuit, .. } => Some(*circuit),
                _ => None,
            })
            .collect();
        let shared: Option<Arc<DcTemplate>> = (built.len() >= 2
            && template::uniform_structure(&built))
        .then(|| DcTemplate::with_options(built[0].circuit(), engine.effective_lu_options()).ok())
        .flatten()
        .map(Arc::new);

        let indices: Vec<usize> = (0..problems.len()).collect();
        indices
            .par_iter()
            .map(|&i| match problems[i] {
                Problem::Graph(g) => {
                    let use_plan = fps[i]
                        .as_ref()
                        .is_some_and(|fp| planned.get(fp).copied().unwrap_or(false));
                    if use_plan {
                        engine.solve_templated_inner(g)
                    } else {
                        engine.solve_cold(g)
                    }
                }
                Problem::Built { circuit, graph } => engine.solve_built_transient_shared(
                    circuit,
                    graph.vertex_count(),
                    shared.as_deref(),
                ),
            })
            .collect()
    }
}

/// What one [`Plan`] captured — the cold-path observables the old ad-hoc
/// stats never exposed in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanReport {
    /// `nnz(L) + nnz(U)` of the plan's symbolic factorization.
    pub factor_nnz: usize,
    /// Diagonal blocks of the block-triangular form.
    pub block_count: usize,
    /// The LU column ordering the plan was built under.
    pub ordering: ColumnOrdering,
    /// Whether this plan came out of the topology cache rather than
    /// running the cold path.
    pub cache_hit: bool,
    /// Lifetime counters of the sharded plan cache behind this solver
    /// (hits/misses/evictions and resident footprint at report time).
    pub cache: PlanCacheStats,
}

/// Stage two: the captured cold path of one graph topology. Cheap to
/// clone (the template is behind an [`Arc`]); derived instances pay only
/// value restamps and numeric linear algebra.
#[derive(Debug, Clone)]
pub struct Plan {
    engine: AnalogMaxFlow,
    tpl: Arc<SubstrateTemplate>,
    cache_hit: bool,
}

impl Plan {
    /// The topology key this plan serves.
    pub fn key(&self) -> &TemplateKey {
        self.tpl.key()
    }

    /// The shared substrate template behind this plan (legacy interop).
    pub fn template(&self) -> &Arc<SubstrateTemplate> {
        &self.tpl
    }

    /// Whether this plan was served from the topology cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// The factorization options the plan's symbolic work was built under
    /// — always the normalized [`SolveOptions::lu`], never a divergent
    /// copy (the option-precedence guarantee).
    pub fn lu_options(&self) -> &LuOptions {
        self.tpl.dc_template().lu_options()
    }

    /// Cold-path observables: fill, block structure, ordering, cache
    /// provenance.
    pub fn report(&self) -> PlanReport {
        let dc = self.tpl.dc_template();
        PlanReport {
            factor_nnz: dc.factor().factor_nnz(),
            block_count: dc.symbolic().block_count(),
            ordering: dc.lu_options().ordering,
            cache_hit: self.cache_hit,
            cache: self.engine.plan_cache_stats(),
        }
    }

    /// Audits the plan's structural invariants end-to-end: the symbolic
    /// elimination plan, the supernode plan and the numeric value arrays
    /// of the shared factorization (see
    /// [`ohmflow_linalg::SparseLu::audit`]), plus the solver's plan-cache
    /// shards. The `ohmflow-audit` binary drives this across the bench
    /// substrates; debug builds also run the factor audit automatically
    /// at construction.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured
    /// [`ohmflow_linalg::AuditError`].
    pub fn audit(&self) -> Result<(), ohmflow_linalg::AuditError> {
        self.tpl.dc_template().factor().audit()?;
        self.engine.audit_plan_cache()
    }

    /// Stage three: instantiates the plan for `g`'s capacity values (the
    /// plan's own capacity mapping) — value-only work, no structure
    /// derivation, no ordering, no symbolic analysis.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidConfig`] if `g`'s topology differs from the
    /// planned one.
    pub fn instance(&self, g: &FlowNetwork) -> Result<Instance, AnalogError> {
        self.instance_mapped(g, self.tpl.build_options().capacity_mapping)
    }

    /// [`Plan::instance`] with an explicit capacity→voltage mapping
    /// override — the Fig. 10 `N`-sweep: the same plan re-instantiated per
    /// quantization level count.
    ///
    /// # Errors
    ///
    /// Same as [`Plan::instance`].
    pub fn instance_mapped(
        &self,
        g: &FlowNetwork,
        mapping: CapacityMapping,
    ) -> Result<Instance, AnalogError> {
        let sc = self.tpl.instantiate_mapped(g, mapping)?;
        Ok(Instance {
            engine: self.engine.clone(),
            tpl: Arc::clone(&self.tpl),
            sc,
            n_vertices: g.vertex_count(),
        })
    }
}

/// Stage three: one programmed substrate instance — the planned topology
/// with a concrete capacity assignment stamped in.
#[derive(Debug, Clone)]
pub struct Instance {
    engine: AnalogMaxFlow,
    tpl: Arc<SubstrateTemplate>,
    sc: SubstrateCircuit,
    n_vertices: usize,
}

impl Instance {
    /// The instantiated substrate circuit (perturb it through
    /// [`SubstrateCircuit::circuit_mut`] for non-ideality studies before
    /// solving).
    pub fn substrate(&self) -> &SubstrateCircuit {
        &self.sc
    }

    /// Mutable access to the instantiated substrate circuit.
    pub fn substrate_mut(&mut self) -> &mut SubstrateCircuit {
        &mut self.sc
    }

    /// Audits the instance's structures: the shared factorization (as
    /// [`Plan::audit`]) plus the substrate's delta-surgery metadata
    /// checked against the planned topology — element-id uniqueness and
    /// the edge-handle/star-handle membership closure.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured
    /// [`ohmflow_linalg::AuditError`].
    pub fn audit(&self) -> Result<(), ohmflow_linalg::AuditError> {
        self.tpl.dc_template().factor().audit()?;
        let (vertices, source, sink, packed) = self.tpl.key().topology();
        let edges: Vec<(usize, usize)> = packed
            .iter()
            .map(|&p| ((p >> 32) as usize, (p & 0xffff_ffff) as usize))
            .collect();
        super::verify::audit_delta_metadata(self.sc.delta_meta(), &edges, vertices, source, sink)
    }

    /// Solves the instance in the configured mode: one DC solve
    /// (quasi-static), the relaxation transient, or the full-MNA ablation.
    /// Warm-start state flows through the plan: repeat solves of the same
    /// values skip most of the clamp-engagement cascade.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; [`AnalogError::NotConverged`] if a
    /// transient never settles within the automatic window limit.
    pub fn solve(&self) -> Result<AnalogSolution, AnalogError> {
        self.engine
            .solve_instance_parts(&self.sc, &self.tpl, self.n_vertices)
    }

    /// Stage four: opens an incremental frozen-DC session on this
    /// instance (structure, ordering and symbolic analysis reused from the
    /// plan — the session start pays only a numeric refactorization).
    ///
    /// # Errors
    ///
    /// [`AnalogError::Circuit`]-wrapped [`SingularSystem`] if the base
    /// configuration is unsolvable.
    ///
    /// [`SingularSystem`]: ohmflow_circuit::CircuitError::SingularSystem
    pub fn session(&self) -> Result<Session<'_>, AnalogError> {
        let inner = self
            .engine
            .dc_solver()
            .session_from(self.sc.circuit(), self.tpl.dc_template())
            .map_err(AnalogError::from)?;
        Ok(Session {
            inner,
            sc: &self.sc,
        })
    }
}

/// Stage four: a persistent incremental frozen-DC session over one
/// instance, wrapping [`FrozenDcSession`] with the substrate readout.
///
/// Between consecutive [`Session::solve`] calls only the clamp-diode
/// states and the source evaluation time may change; flips are absorbed as
/// Woodbury rank-1 updates with periodic numeric-only refactorizations —
/// the engine the relaxation transient runs on, exposed for callers that
/// drive their own switching schedules.
#[derive(Debug)]
pub struct Session<'i> {
    inner: FrozenDcSession<&'i Circuit>,
    sc: &'i SubstrateCircuit,
}

impl<'i> Session<'i> {
    /// Solves the operating point at `time` with the given frozen clamp
    /// states (indexed by [`ohmflow_circuit::Circuit::diode_ids`] order).
    ///
    /// # Errors
    ///
    /// [`SingularSystem`] if the frozen configuration is unsolvable (the
    /// session recovers on the next solvable call).
    ///
    /// [`SingularSystem`]: ohmflow_circuit::CircuitError::SingularSystem
    pub fn solve(&mut self, time: f64, clamps_on: &[bool]) -> Result<(), AnalogError> {
        self.inner.solve(time, clamps_on).map_err(AnalogError::from)
    }

    /// Flow value `|f|` (flow units) of the last solved operating point.
    pub fn flow_value(&self) -> f64 {
        self.sc.flow_value(|n| self.inner.voltage(n))
    }

    /// Per-edge flows (edge-id order, flow units) of the last solved
    /// operating point.
    pub fn edge_flows(&self) -> Vec<f64> {
        self.sc.edge_flows(|n| self.inner.voltage(n))
    }

    /// Voltage of `node` in the last solved operating point.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.inner.voltage(node)
    }

    /// Raw branch current of `id` in the last solved operating point.
    pub fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.inner.branch_current(id)
    }

    /// The last solved unknown vector (node voltages then branch
    /// currents).
    pub fn values(&self) -> &[f64] {
        self.inner.values()
    }

    /// Linear-algebra effort counters for this session.
    pub fn stats(&self) -> FrozenDcStats {
        self.inner.stats()
    }

    /// Per-phase wall-clock attribution (meaningful when the options
    /// enabled [`SolveOptions::phase_timing`]).
    pub fn phase_times(&self) -> FrozenDcPhases {
        self.inner.phase_times()
    }

    /// Structured accounting of the session so far.
    pub fn report(&self) -> SolveReport {
        self.inner.report()
    }

    /// The wrapped circuit-level session (escape hatch).
    pub fn as_frozen_dc(&mut self) -> &mut FrozenDcSession<&'i Circuit> {
        &mut self.inner
    }
}
