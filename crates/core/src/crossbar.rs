//! §3 reconfigurable crossbar: an `n × n` array of memristor-switched
//! circuit widgets that physically encodes the adjacency matrix, plus the
//! §3.1 row-by-row pulse-programming protocol.

use ohmflow_circuit::MemristorState;
use ohmflow_graph::FlowNetwork;

use crate::params::SubstrateParams;
use crate::AnalogError;

/// Report of one §3.1 programming pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgrammingReport {
    /// Programming cycles consumed — always `n` (one per row).
    pub cycles: usize,
    /// Cells driven to LRS (edges present).
    pub set_pulses: usize,
    /// Cells left/reset to HRS.
    pub reset_pulses: usize,
    /// Half-selected cells that saw a sub-threshold disturb voltage.
    pub half_selected: usize,
}

/// The reconfigurable crossbar substrate.
///
/// Cell `(i, j)` holds the memristor switch of the circuit widget for the
/// potential edge `i → j`; LRS = edge present (the memristor doubles as the
/// unit resistor `r`), HRS = absent. Row 0 doubles as the objective row
/// (Fig. 6): switch `(s, i)` connects `V_flow` to edge `(s, i)`.
///
/// # Example
///
/// ```
/// use ohmflow::crossbar::Crossbar;
/// use ohmflow::SubstrateParams;
/// use ohmflow_graph::generators::fig5a;
///
/// # fn main() -> Result<(), ohmflow::AnalogError> {
/// let mut xbar = Crossbar::new(&SubstrateParams::table1(), 8)?;
/// let report = xbar.program(&fig5a())?;
/// assert_eq!(report.cycles, 8);
/// assert_eq!(xbar.active_cells(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    n: usize,
    params: SubstrateParams,
    /// Row-major cell states.
    cells: Vec<MemristorState>,
    /// Programming voltages: `(v_low, v_high)` with
    /// `v_high − v_low ≥ threshold` selecting a cell.
    v_low: f64,
    v_high: f64,
}

impl Crossbar {
    /// Creates an all-HRS crossbar of side `n`.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidConfig`] if `n == 0` or the programming
    /// voltages implied by the memristor threshold are degenerate.
    pub fn new(params: &SubstrateParams, n: usize) -> Result<Self, AnalogError> {
        if n == 0 {
            return Err(AnalogError::InvalidConfig {
                what: "crossbar dimension 0".to_owned(),
            });
        }
        let vt = params.memristor.v_threshold;
        if vt <= 0.0 || vt.is_nan() {
            return Err(AnalogError::InvalidConfig {
                what: format!("memristor threshold {vt}"),
            });
        }
        Ok(Crossbar {
            n,
            params: params.clone(),
            cells: vec![MemristorState::Hrs; n * n],
            // Select with ±(2/3)·V_t on each line: selected cell sees
            // (4/3)·V_t ≥ V_t, half-selected cells see (2/3)·V_t < V_t.
            v_low: -(2.0 / 3.0) * vt,
            v_high: (2.0 / 3.0) * vt,
        })
    }

    /// Table 1 crossbar: 1000 × 1000.
    ///
    /// # Errors
    ///
    /// Same as [`Crossbar::new`].
    pub fn table1() -> Result<Self, AnalogError> {
        let p = SubstrateParams::table1();
        let n = p.crossbar_dim;
        Crossbar::new(&p, n)
    }

    /// Side length `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// State of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn cell(&self, row: usize, col: usize) -> MemristorState {
        self.cells[row * self.n + col]
    }

    /// Number of LRS (active) cells.
    pub fn active_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|&&c| c == MemristorState::Lrs)
            .count()
    }

    /// Fraction of the crossbar used by the programmed graph — the §6.2
    /// motivation: sparse graphs leave a mesh mostly idle.
    pub fn utilization(&self) -> f64 {
        self.active_cells() as f64 / (self.n * self.n) as f64
    }

    /// Programs the crossbar to encode `g` using the §3.1 protocol: `n`
    /// cycles, one per row; in cycle `i` the row line is driven to
    /// `V_low` and every column whose cell must become LRS to `V_high`
    /// (cell voltage `V_high − V_low` ≥ threshold), all other lines held at
    /// 0 V so unselected and half-selected cells are not disturbed.
    ///
    /// Cells whose desired state is HRS but currently sit in LRS receive a
    /// reset pulse of the opposite polarity in a second sub-phase of the
    /// same row cycle.
    ///
    /// # Errors
    ///
    /// [`AnalogError::CrossbarTooSmall`] if the graph has more vertices
    /// than crossbar rows.
    pub fn program(&mut self, g: &FlowNetwork) -> Result<ProgrammingReport, AnalogError> {
        let nv = g.vertex_count();
        if nv > self.n {
            return Err(AnalogError::CrossbarTooSmall {
                required: nv,
                available: self.n,
            });
        }
        // Desired adjacency (parallel edges share one switch; their widgets
        // share the cell, capacities are still distinct voltage levels).
        let mut want = vec![false; self.n * self.n];
        for e in g.edges() {
            want[e.from * self.n + e.to] = true;
        }

        let vt = self.params.memristor.v_threshold;
        let mut report = ProgrammingReport {
            cycles: self.n,
            set_pulses: 0,
            reset_pulses: 0,
            half_selected: 0,
        };
        for row in 0..self.n {
            for col in 0..self.n {
                let idx = row * self.n + col;
                let cell = &mut self.cells[idx];
                if want[idx] {
                    // Selected for SET: sees v_high − v_low.
                    let v = self.v_high - self.v_low;
                    debug_assert!(v >= vt);
                    *cell = MemristorState::Lrs;
                    report.set_pulses += 1;
                } else if *cell == MemristorState::Lrs {
                    // Needs RESET: opposite-polarity full-select pulse.
                    *cell = MemristorState::Hrs;
                    report.reset_pulses += 1;
                } else {
                    // Half-selected or unselected: sees at most
                    // max(|v_low|, |v_high|) < threshold — undisturbed.
                    let disturb = self.v_high.abs().max(self.v_low.abs());
                    debug_assert!(disturb < vt);
                    report.half_selected += 1;
                }
            }
        }
        Ok(report)
    }

    /// Verifies that the crossbar state matches a graph's adjacency.
    pub fn encodes(&self, g: &FlowNetwork) -> bool {
        if g.vertex_count() > self.n {
            return false;
        }
        let mut want = vec![false; self.n * self.n];
        for e in g.edges() {
            want[e.from * self.n + e.to] = true;
        }
        self.cells
            .iter()
            .zip(&want)
            .all(|(&c, &w)| (c == MemristorState::Lrs) == w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohmflow_graph::generators;
    use ohmflow_graph::rmat::RmatConfig;

    #[test]
    fn program_and_verify_fig5a() {
        let mut xb = Crossbar::new(&SubstrateParams::table1(), 8).unwrap();
        let g = generators::fig5a();
        let rep = xb.program(&g).unwrap();
        assert_eq!(rep.cycles, 8);
        assert_eq!(rep.set_pulses, 5);
        assert_eq!(rep.reset_pulses, 0);
        assert!(xb.encodes(&g));
        assert_eq!(xb.cell(0, 1), MemristorState::Lrs);
        assert_eq!(xb.cell(1, 0), MemristorState::Hrs);
    }

    #[test]
    fn reprogramming_resets_stale_cells() {
        let mut xb = Crossbar::new(&SubstrateParams::table1(), 8).unwrap();
        xb.program(&generators::fig5a()).unwrap();
        let g2 = generators::path(&[1, 2, 3]).unwrap();
        let rep = xb.program(&g2).unwrap();
        assert!(rep.reset_pulses > 0, "stale fig5a cells must reset");
        assert!(xb.encodes(&g2));
        assert!(!xb.encodes(&generators::fig5a()));
    }

    #[test]
    fn too_small_crossbar_rejected() {
        let mut xb = Crossbar::new(&SubstrateParams::table1(), 3).unwrap();
        let g = generators::fig5a(); // 5 vertices
        assert!(matches!(
            xb.program(&g),
            Err(AnalogError::CrossbarTooSmall {
                required: 5,
                available: 3
            })
        ));
    }

    #[test]
    fn utilization_reflects_sparsity() {
        let mut xb = Crossbar::new(&SubstrateParams::table1(), 64).unwrap();
        let g = RmatConfig::sparse(64, 1).generate().unwrap();
        xb.program(&g).unwrap();
        let u = xb.utilization();
        assert!(u > 0.0 && u < 0.2, "sparse graph utilization {u}");
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(Crossbar::new(&SubstrateParams::table1(), 0).is_err());
    }
}
