//! `ohmflow` — a reproduction of *"A Reconfigurable Analog Substrate for
//! Highly Efficient Maximum Flow Computation"* (Gai Liu & Zhiru Zhang,
//! DAC 2015, extended report).
//!
//! The paper maps max-flow instances onto an analog circuit whose
//! steady-state node voltages *are* the optimal flow assignment: diode
//! clamps enforce edge capacities (§2.1), negative-resistor star networks
//! enforce flow conservation by KCL (§2.2), and a drive source `V_flow`
//! pushes the flow value to its maximum (§2.3). A memristor crossbar makes
//! the substrate reconfigurable (§3).
//!
//! This crate is the top of the workspace:
//!
//! * [`params`] — Table 1 design parameters,
//! * [`quantize`] — §4.1 voltage-level quantization,
//! * [`builder`] — direct-mapped graph → circuit construction (§2),
//! * [`solver`] — the solve engine and its **staged public facade**
//!   ([`MaxFlowSolver`]): one [`SolveOptions`] → [`Plan`] (topology-keyed
//!   symbolic work, cached) → [`Instance`] (value-only re-instantiation)
//!   → solve / [`Session`] (incremental frozen-DC work); `solve_many`
//!   batches with automatic same-topology grouping,
//! * [`template`] — topology-keyed [`SubstrateTemplate`]s: the cold path
//!   (build, MNA structure, ordering, symbolic LU) amortized across every
//!   same-topology solve, with value-only instantiation,
//! * [`crossbar`] — the reconfigurable memristor crossbar with the §3.1
//!   row-by-row programming protocol,
//! * [`nonideal`] — §4.2/§4.3 non-ideality injection (finite op-amp gain,
//!   resistor tolerance vs. matched-ratio tolerance, parasitics),
//! * [`tuning`] — §4.3.2 post-fabrication memristance tuning,
//! * [`power`] — §5.2 analytical power/energy model,
//! * [`mincut`] — §6.3 dual (min-cut) formulation,
//! * [`decompose`] — §6.4 dual decomposition for large graphs,
//! * [`clustered`] — §6.2 clustered island-style architectures,
//! * [`dynamics`] — §6.5 quasi-static trajectory studies.
//!
//! # Quickstart
//!
//! ```
//! use ohmflow::{MaxFlowSolver, SolveOptions};
//! use ohmflow_graph::generators::fig5a;
//!
//! # fn main() -> Result<(), ohmflow::AnalogError> {
//! let g = fig5a();
//! let solver = MaxFlowSolver::new(SolveOptions::ideal());
//! // Stage it explicitly (plan → instance → solve) …
//! let solution = solver.plan(&g)?.instance(&g)?.solve()?;
//! assert!((solution.value - 2.0).abs() < 0.05); // exact max flow is 2
//! // … or let `solve` ride the plan cache in one call.
//! let again = solver.solve(&g)?;
//! assert!((again.value - solution.value).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod clustered;
pub mod crossbar;
pub mod decompose;
pub mod dynamics;
mod error;
pub mod mincut;
pub mod nonideal;
pub mod params;
pub mod power;
pub mod quantize;
pub mod solver;
pub mod template;
pub mod tuning;

pub use error::AnalogError;
pub use params::SubstrateParams;
pub use solver::facade::{
    Instance, MaxFlowSolver, Plan, PlanReport, Problem, Session, SolveOptions,
};
pub use solver::{
    AnalogConfig, AnalogMaxFlow, AnalogSolution, DeltaBatch, DeltaReport, DeltaSession, GraphDelta,
    PlanCacheStats, RelaxationEngine, SolveMode,
};
pub use template::{SubstrateTemplate, TemplateKey};
