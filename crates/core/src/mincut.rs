//! §6.3 the dual formulation: minimum cut.
//!
//! Two artifacts are reproduced:
//!
//! * [`cut_from_analog`] — extracting a minimum cut *certificate* from the
//!   analog max-flow solution (saturated-edge reachability, the dual
//!   readout that max-flow/min-cut duality licenses),
//! * [`DualMeshArchitecture`] — the Fig. 14 mesh that encodes the min-cut
//!   LP with one elementary cell per adjacency-matrix entry (`O(n²)`
//!   cells), with a behavioural solver for the LP itself: a projected
//!   subgradient flow integrating the Fig. 13 circuit's dynamics
//!   (objective pulls `d_ij` down through conductances `∝ c_ij`, the
//!   constraint widgets pull `d_ij ≥ p_i − p_j` up, `p_s − p_t ≥ 1` pins
//!   the potentials). Documented substitution: we integrate the gradient
//!   flow directly instead of building the mesh netlist, since the paper
//!   itself only sketches the circuit.

use ohmflow_graph::{EdgeId, FlowNetwork};

use crate::AnalogError;

/// A cut produced from an analog solution.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogCut {
    /// `true` for vertices on the source side.
    pub source_side: Vec<bool>,
    /// Edges crossing the cut, source side → sink side.
    pub cut_edges: Vec<EdgeId>,
    /// Total capacity of the extracted cut.
    pub capacity: i64,
}

/// Extracts a minimum-cut certificate from (approximate, real-valued)
/// analog edge flows: BFS from the source across edges with residual
/// capacity above `slack` and backwards across edges carrying at least
/// `slack` of flow.
///
/// With exact flows this is the textbook residual-reachability argument;
/// `slack` absorbs the substrate's quantization and non-ideality error
/// (use ~half the quantization step).
pub fn cut_from_analog(g: &FlowNetwork, flows: &[f64], slack: f64) -> AnalogCut {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut stack = vec![g.source()];
    seen[g.source()] = true;
    while let Some(v) = stack.pop() {
        for e in g.out_edges(v) {
            let edge = g.edge(e);
            let residual = edge.capacity as f64 - flows.get(e.0).copied().unwrap_or(0.0);
            if residual > slack && !seen[edge.to] {
                seen[edge.to] = true;
                stack.push(edge.to);
            }
        }
        for e in g.in_edges(v) {
            let edge = g.edge(e);
            if flows.get(e.0).copied().unwrap_or(0.0) > slack && !seen[edge.from] {
                seen[edge.from] = true;
                stack.push(edge.from);
            }
        }
    }
    let mut cut_edges = Vec::new();
    let mut capacity = 0i64;
    for (k, e) in g.edges().iter().enumerate() {
        if seen[e.from] && !seen[e.to] {
            cut_edges.push(EdgeId(k));
            capacity += e.capacity;
        }
    }
    AnalogCut {
        source_side: seen,
        cut_edges,
        capacity,
    }
}

/// The Fig. 14 mesh-based dual architecture: structural model plus a
/// behavioural LP solver for the min-cut program of Fig. 12.
#[derive(Debug, Clone)]
pub struct DualMeshArchitecture {
    n: usize,
}

/// Result of a behavioural dual-circuit solve.
#[derive(Debug, Clone)]
pub struct DualSolution {
    /// Vertex potentials `p_i ∈ [0, 1]`.
    pub potentials: Vec<f64>,
    /// Cut indicators `d_ij ≥ 0` per edge.
    pub indicators: Vec<f64>,
    /// The LP objective `Σ c_ij d_ij` at the final iterate.
    pub objective: f64,
    /// The *rounded* cut capacity obtained by thresholding `p` at 1/2 —
    /// this is the integral certificate the architecture would read out.
    pub rounded_capacity: i64,
    /// Gradient-flow iterations used.
    pub iterations: usize,
}

impl DualMeshArchitecture {
    /// A mesh supporting up to `n` vertices.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidConfig`] for `n == 0`.
    pub fn new(n: usize) -> Result<Self, AnalogError> {
        if n == 0 {
            return Err(AnalogError::InvalidConfig {
                what: "mesh dimension 0".to_owned(),
            });
        }
        Ok(DualMeshArchitecture { n })
    }

    /// Number of elementary cells — `O(n²)` per §6.3's closing remark.
    pub fn cell_count(&self) -> usize {
        self.n * self.n
    }

    /// Cells actually used by a graph (one per present edge).
    pub fn used_cells(&self, g: &FlowNetwork) -> usize {
        g.edge_count()
    }

    /// Solves the min-cut LP of Fig. 12 with the behavioural gradient flow
    /// of the Fig. 13 circuits: `d_ij = max(0, p_i − p_j)` (the constraint
    /// widget's steady state), `p_s = 1`, `p_t = 0` (source/sink widget),
    /// and the potentials descend the objective
    /// `Σ c_ij · max(0, p_i − p_j)` by projected subgradient steps (the
    /// "objective drives down the node voltages" mechanism of Fig. 13a).
    ///
    /// # Errors
    ///
    /// [`AnalogError::CrossbarTooSmall`] if the graph exceeds the mesh.
    pub fn solve(&self, g: &FlowNetwork, iterations: usize) -> Result<DualSolution, AnalogError> {
        if g.vertex_count() > self.n {
            return Err(AnalogError::CrossbarTooSmall {
                required: g.vertex_count(),
                available: self.n,
            });
        }
        let n = g.vertex_count();
        let (s, t) = (g.source(), g.sink());
        // Initialize potentials on a BFS-ish gradient from s to t.
        let mut p = vec![0.5f64; n];
        p[s] = 1.0;
        p[t] = 0.0;

        let c_max = g.max_capacity() as f64;
        let mut step = 0.5 / c_max.max(1.0);
        let mut iters_used = 0;
        for it in 0..iterations {
            iters_used = it + 1;
            // Subgradient of Σ c_ij max(0, p_i − p_j) w.r.t. p.
            let mut grad = vec![0.0f64; n];
            for e in g.edges() {
                if p[e.from] > p[e.to] {
                    grad[e.from] += e.capacity as f64;
                    grad[e.to] -= e.capacity as f64;
                }
            }
            let mut moved = 0.0f64;
            for v in 0..n {
                if v == s || v == t {
                    continue;
                }
                let new = (p[v] - step * grad[v]).clamp(0.0, 1.0);
                moved += (new - p[v]).abs();
                p[v] = new;
            }
            // Diminishing steps give subgradient convergence.
            if it % 50 == 49 {
                step *= 0.7;
            }
            if moved < 1e-12 {
                break;
            }
        }

        let indicators: Vec<f64> = g
            .edges()
            .iter()
            .map(|e| (p[e.from] - p[e.to]).max(0.0))
            .collect();
        let objective = g
            .edges()
            .iter()
            .zip(&indicators)
            .map(|(e, d)| e.capacity as f64 * d)
            .sum();

        // Round: source side = { v : p_v > 1/2 }.
        let rounded_capacity = g
            .edges()
            .iter()
            .filter(|e| p[e.from] > 0.5 && p[e.to] <= 0.5)
            .map(|e| e.capacity)
            .sum();

        Ok(DualSolution {
            potentials: p,
            indicators,
            objective,
            rounded_capacity,
            iterations: iters_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::facade::{MaxFlowSolver, SolveOptions};
    use ohmflow_graph::generators;
    use ohmflow_graph::rmat::RmatConfig;
    use ohmflow_maxflow::min_cut;

    #[test]
    fn analog_cut_matches_exact_on_fig5a() {
        let g = generators::fig5a();
        let sol = MaxFlowSolver::new(SolveOptions::ideal())
            .solve_fresh(&g)
            .unwrap();
        let cut = cut_from_analog(&g, &sol.edge_flows, 0.05);
        assert_eq!(cut.capacity, min_cut(&g).capacity);
        assert!(cut.source_side[g.source()]);
        assert!(!cut.source_side[g.sink()]);
    }

    #[test]
    fn analog_cut_matches_exact_on_rmat() {
        for seed in 0..5 {
            let g = RmatConfig::sparse(24, seed).generate().unwrap();
            // Larger graphs need more drive headroom before every binding
            // constraint saturates (§2.3 monotonicity).
            let mut cfg = SolveOptions::ideal();
            cfg.params.v_flow = 400.0;
            let sol = MaxFlowSolver::new(cfg).solve_fresh(&g).unwrap();
            let cut = cut_from_analog(&g, &sol.edge_flows, 0.25);
            assert_eq!(cut.capacity, min_cut(&g).capacity, "seed {seed}");
        }
    }

    #[test]
    fn dual_mesh_solves_small_cuts() {
        let mesh = DualMeshArchitecture::new(16).unwrap();
        for g in [
            generators::fig5a(),
            generators::path(&[9, 1, 9]).unwrap(),
            generators::parallel_paths(3, 2).unwrap(),
        ] {
            let exact = min_cut(&g).capacity;
            let d = mesh.solve(&g, 2_000).unwrap();
            assert_eq!(d.rounded_capacity, exact, "rounded cut vs exact");
            assert!(
                d.objective <= exact as f64 + 0.05,
                "LP objective {} vs exact {exact}",
                d.objective
            );
        }
    }

    #[test]
    fn mesh_area_is_quadratic() {
        let mesh = DualMeshArchitecture::new(100).unwrap();
        assert_eq!(mesh.cell_count(), 10_000);
        let g = generators::fig5a();
        assert_eq!(mesh.used_cells(&g), 5);
    }

    #[test]
    fn mesh_rejects_oversized_graphs() {
        let mesh = DualMeshArchitecture::new(3).unwrap();
        assert!(matches!(
            mesh.solve(&generators::fig5a(), 10),
            Err(AnalogError::CrossbarTooSmall { .. })
        ));
    }
}
