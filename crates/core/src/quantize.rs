//! §4.1 voltage-level quantization.
//!
//! One voltage source per *level* (not per edge) keeps the substrate
//! practical: edge capacities are mapped onto `N` uniform levels in
//! `[0, V_dd]`, and the circuit solution is mapped back to `[0, C]`.
//!
//! The paper's Eq. for `Q` is written with a floor, but its own Fig. 8
//! values (capacity 1 of 3 → 0.35 V = 7/20, capacity 2 of 3 → 0.65 V =
//! 13/20) are produced by *rounding to the nearest level*; both modes are
//! offered, with [`Rounding::Nearest`] as the default that reproduces
//! Fig. 8 exactly.

/// Rounding mode of the quantization function `Q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rounding {
    /// Round to the nearest level (reproduces Fig. 8).
    #[default]
    Nearest,
    /// Floor, as the text of §4.1 literally states.
    Floor,
}

/// The quantization scheme `Q : [0, C] → {k/N · V_dd}`.
///
/// # Example
///
/// ```
/// use ohmflow::quantize::Quantizer;
///
/// // Fig. 8: N = 20, Vdd = 1 V, C = 3.
/// let q = Quantizer::new(20, 1.0, 3.0);
/// assert!((q.quantize(2.0) - 0.65).abs() < 1e-12);
/// assert!((q.quantize(1.0) - 0.35).abs() < 1e-12);
/// assert!((q.quantize(3.0) - 1.00).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    n_levels: u32,
    v_dd: f64,
    c_max: f64,
    rounding: Rounding,
}

impl Quantizer {
    /// Creates a quantizer with `n_levels` levels spanning `[0, v_dd]` for
    /// capacities up to `c_max`, rounding to the nearest level.
    ///
    /// # Panics
    ///
    /// Panics if `n_levels == 0`, `v_dd <= 0` or `c_max <= 0`.
    pub fn new(n_levels: u32, v_dd: f64, c_max: f64) -> Self {
        Self::with_rounding(n_levels, v_dd, c_max, Rounding::Nearest)
    }

    /// [`Quantizer::new`] with an explicit [`Rounding`] mode.
    ///
    /// # Panics
    ///
    /// Same as [`Quantizer::new`].
    pub fn with_rounding(n_levels: u32, v_dd: f64, c_max: f64, rounding: Rounding) -> Self {
        assert!(n_levels > 0, "need at least one level");
        assert!(v_dd > 0.0 && c_max > 0.0, "v_dd and c_max must be positive");
        Quantizer {
            n_levels,
            v_dd,
            c_max,
            rounding,
        }
    }

    /// Number of levels `N`.
    pub fn levels(&self) -> u32 {
        self.n_levels
    }

    /// Supply voltage `V_dd`.
    pub fn v_dd(&self) -> f64 {
        self.v_dd
    }

    /// Largest representable capacity `C`.
    pub fn c_max(&self) -> f64 {
        self.c_max
    }

    /// The level index a capacity maps to (clamped to `1..=N`; a positive
    /// capacity never quantizes to zero because that would delete the edge).
    pub fn level_index(&self, capacity: f64) -> u32 {
        let raw = capacity / self.c_max * self.n_levels as f64;
        let k = match self.rounding {
            Rounding::Nearest => raw.round(),
            Rounding::Floor => raw.floor(),
        };
        (k as i64).clamp(1, self.n_levels as i64) as u32
    }

    /// Voltage of level `k`: `k/N · V_dd`.
    pub fn level_voltage(&self, k: u32) -> f64 {
        k as f64 / self.n_levels as f64 * self.v_dd
    }

    /// Quantized clamp voltage for a capacity: `Q(capacity)`.
    pub fn quantize(&self, capacity: f64) -> f64 {
        self.level_voltage(self.level_index(capacity))
    }

    /// Maps a circuit voltage back into flow units: `Ỹ = Y · C / V_dd`.
    pub fn dequantize(&self, volts: f64) -> f64 {
        volts * self.c_max / self.v_dd
    }

    /// Worst-case per-edge quantization error `e = C / N` (flow units);
    /// halved under nearest rounding.
    pub fn worst_case_error(&self) -> f64 {
        let step = self.c_max / self.n_levels as f64;
        match self.rounding {
            Rounding::Nearest => step / 2.0,
            Rounding::Floor => step,
        }
    }
}

/// An exact (non-quantized) capacity→voltage mapping: the "one distinct
/// voltage source per edge" idealization of §2, normalized so the largest
/// capacity maps to `V_dd`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactScaling {
    /// Supply voltage.
    pub v_dd: f64,
    /// Largest capacity.
    pub c_max: f64,
}

impl ExactScaling {
    /// Creates the scaling.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn new(v_dd: f64, c_max: f64) -> Self {
        assert!(v_dd > 0.0 && c_max > 0.0, "v_dd and c_max must be positive");
        ExactScaling { v_dd, c_max }
    }

    /// Clamp voltage of a capacity.
    pub fn to_volts(&self, capacity: f64) -> f64 {
        capacity / self.c_max * self.v_dd
    }

    /// Flow value of a circuit voltage.
    pub fn to_flow(&self, volts: f64) -> f64 {
        volts * self.c_max / self.v_dd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_levels_reproduced() {
        let q = Quantizer::new(20, 1.0, 3.0);
        assert_eq!(q.level_index(3.0), 20);
        assert_eq!(q.level_index(2.0), 13); // 13.33 → 13 → 0.65 V
        assert_eq!(q.level_index(1.0), 7); // 6.67 → 7 → 0.35 V
        assert!((q.quantize(2.0) - 0.65).abs() < 1e-12);
        assert!((q.quantize(1.0) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn floor_mode_matches_text_formula() {
        let q = Quantizer::with_rounding(20, 1.0, 3.0, Rounding::Floor);
        assert_eq!(q.level_index(2.0), 13);
        assert_eq!(q.level_index(1.0), 6); // floor(6.67)
        assert!((q.quantize(1.0) - 0.30).abs() < 1e-12);
    }

    #[test]
    fn positive_capacity_never_vanishes() {
        let q = Quantizer::with_rounding(10, 1.0, 100.0, Rounding::Floor);
        // 0.5/100*10 = 0.05 → floor 0, clamped to level 1.
        assert_eq!(q.level_index(0.5), 1);
        assert!(q.quantize(0.5) > 0.0);
    }

    #[test]
    fn dequantize_inverts_scaling() {
        let q = Quantizer::new(20, 1.0, 3.0);
        let v = q.quantize(3.0);
        assert!((q.dequantize(v) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_error_bound() {
        let q = Quantizer::with_rounding(20, 1.0, 3.0, Rounding::Floor);
        assert!((q.worst_case_error() - 0.15).abs() < 1e-12);
        let qn = Quantizer::new(20, 1.0, 3.0);
        assert!((qn.worst_case_error() - 0.075).abs() < 1e-12);
        // Every capacity's round-trip error is within the bound.
        for c in [0.3, 1.0, 1.49, 2.0, 2.9, 3.0] {
            let err = (qn.dequantize(qn.quantize(c)) - c).abs();
            assert!(err <= qn.worst_case_error() + 1e-12, "c={c} err={err}");
        }
    }

    #[test]
    fn more_levels_reduce_error() {
        let coarse = Quantizer::new(5, 1.0, 3.0);
        let fine = Quantizer::new(100, 1.0, 3.0);
        assert!(fine.worst_case_error() < coarse.worst_case_error());
    }

    #[test]
    fn exact_scaling_roundtrip() {
        let s = ExactScaling::new(1.0, 20.0);
        assert!((s.to_volts(20.0) - 1.0).abs() < 1e-12);
        assert!((s.to_flow(s.to_volts(7.0)) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = Quantizer::new(0, 1.0, 1.0);
    }
}
