use std::collections::VecDeque;

use ohmflow_graph::FlowNetwork;

use crate::residual::ResidualGraph;
use crate::FlowResult;

/// Edmonds–Karp: shortest augmenting paths by BFS, `O(V E²)`.
///
/// The simplest of the three solvers; used as the ground-truth oracle in
/// differential tests because its implementation is the easiest to audit.
///
/// # Example
///
/// ```
/// let g = ohmflow_graph::generators::fig5a();
/// let r = ohmflow_maxflow::edmonds_karp(&g);
/// assert_eq!(r.value, 2);
/// assert!(r.is_valid_for(&g));
/// ```
pub fn edmonds_karp(g: &FlowNetwork) -> FlowResult {
    let mut rg = ResidualGraph::new(g);
    let (s, t) = (rg.source(), rg.sink());
    let n = rg.vertex_count();
    let mut value: i64 = 0;
    let mut pred: Vec<Option<usize>> = vec![None; n]; // arc used to reach v

    loop {
        // BFS for a shortest residual path.
        pred.fill(None);
        let mut q = VecDeque::new();
        q.push_back(s);
        let mut found = false;
        'bfs: while let Some(v) = q.pop_front() {
            for &a in rg.arcs(v) {
                let u = rg.head(a);
                if rg.residual(a) > 0 && pred[u].is_none() && u != s {
                    pred[u] = Some(a);
                    if u == t {
                        found = true;
                        break 'bfs;
                    }
                    q.push_back(u);
                }
            }
        }
        if !found {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = i64::MAX;
        let mut v = t;
        while v != s {
            let a = pred[v]
                .expect("invariant: augmenting-path predecessors are set for every path vertex");
            bottleneck = bottleneck.min(rg.residual(a));
            v = rg.head(ResidualGraph::reverse(a));
        }
        // Augment.
        let mut v = t;
        while v != s {
            let a = pred[v]
                .expect("invariant: augmenting-path predecessors are set for every path vertex");
            rg.push(a, bottleneck);
            v = rg.head(ResidualGraph::reverse(a));
        }
        value += bottleneck;
    }

    FlowResult {
        value,
        edge_flows: rg.edge_flows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohmflow_graph::generators;

    #[test]
    fn fig5a_value_is_two() {
        let g = generators::fig5a();
        let r = edmonds_karp(&g);
        assert_eq!(r.value, 2);
        assert!(r.is_valid_for(&g));
    }

    #[test]
    fn fig15a_value_is_four() {
        let g = generators::fig15a(1_000);
        let r = edmonds_karp(&g);
        assert_eq!(r.value, 4);
        assert!(r.is_valid_for(&g));
    }

    #[test]
    fn path_flow_is_bottleneck() {
        let g = generators::path(&[5, 2, 9]).unwrap();
        assert_eq!(edmonds_karp(&g).value, 2);
    }

    #[test]
    fn parallel_paths_sum() {
        let g = generators::parallel_paths(4, 3).unwrap();
        assert_eq!(edmonds_karp(&g).value, 12);
    }

    #[test]
    fn unreachable_sink_gives_zero() {
        let mut g = FlowNetwork::new(4, 0, 3).unwrap();
        g.add_edge(0, 1, 5).unwrap();
        g.add_edge(2, 3, 5).unwrap();
        let r = edmonds_karp(&g);
        assert_eq!(r.value, 0);
        assert!(r.edge_flows.iter().all(|&f| f == 0));
    }

    #[test]
    fn backward_augmentation_needed() {
        // Classic 4-node diamond with a cross edge: optimal flow requires
        // rerouting through the residual reverse arc.
        let mut g = FlowNetwork::new(4, 0, 3).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(0, 2, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(1, 3, 1).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        let r = edmonds_karp(&g);
        assert_eq!(r.value, 2);
        assert!(r.is_valid_for(&g));
    }
}
