use std::collections::VecDeque;

use ohmflow_graph::FlowNetwork;

use crate::residual::ResidualGraph;
use crate::FlowResult;

/// Active-vertex selection rule for [`push_relabel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PushRelabelVariant {
    /// FIFO selection — the classic Goldberg–Tarjan queue discipline.
    #[default]
    Fifo,
    /// Highest-label selection — typically fastest in practice and the
    /// configuration most "widely used" baselines (e.g. `hi_pr`) employ.
    HighestLabel,
}

/// Goldberg–Tarjan push-relabel with the gap heuristic and periodic global
/// relabeling — the paper's §5.1 CPU baseline.
///
/// # Example
///
/// ```
/// use ohmflow_maxflow::{push_relabel, PushRelabelVariant};
///
/// let g = ohmflow_graph::generators::fig5a();
/// let r = push_relabel(&g, PushRelabelVariant::HighestLabel);
/// assert_eq!(r.value, 2);
/// assert!(r.is_valid_for(&g));
/// ```
pub fn push_relabel(g: &FlowNetwork, variant: PushRelabelVariant) -> FlowResult {
    let mut rg = ResidualGraph::new(g);
    let (s, t) = (rg.source(), rg.sink());
    let n = rg.vertex_count();

    let mut excess = vec![0i64; n];
    let mut label = vec![0usize; n];
    let mut current_arc = vec![0usize; n];
    // label frequency for the gap heuristic (labels can reach 2n).
    let mut label_count = vec![0usize; 2 * n + 1];

    // Global relabel: exact distances to the sink by reverse BFS.
    let global_relabel = |rg: &ResidualGraph,
                          label: &mut [usize],
                          label_count: &mut [usize],
                          current_arc: &mut [usize]| {
        label_count.iter_mut().for_each(|c| *c = 0);
        let unreachable = 2 * n;
        label.iter_mut().for_each(|l| *l = unreachable);
        label[t] = 0;
        let mut q = VecDeque::new();
        q.push_back(t);
        while let Some(v) = q.pop_front() {
            for &a in rg.arcs(v) {
                // Arc a leaves v; flow could come *into* v along reverse(a),
                // so u = head(a) can reach t if reverse arc has residual.
                let u = rg.head(a);
                if label[u] == unreachable && rg.residual(ResidualGraph::reverse(a)) > 0 {
                    label[u] = label[v] + 1;
                    q.push_back(u);
                }
            }
        }
        label[s] = n;
        for &l in label.iter() {
            label_count[l.min(2 * n)] += 1;
        }
        current_arc.iter_mut().for_each(|c| *c = 0);
    };

    global_relabel(&rg, &mut label, &mut label_count, &mut current_arc);

    // Saturate source arcs.
    let source_arcs: Vec<usize> = rg.arcs(s).to_vec();
    for a in source_arcs {
        let cap = rg.residual(a);
        if cap > 0 {
            let u = rg.head(a);
            rg.push(a, cap);
            excess[u] += cap;
            excess[s] -= cap;
        }
    }

    // Active set.
    let mut fifo: VecDeque<usize> = VecDeque::new();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); 2 * n + 1];
    let mut highest = 0usize;
    let mut in_active = vec![false; n];
    let activate = |v: usize,
                    label: &[usize],
                    fifo: &mut VecDeque<usize>,
                    buckets: &mut Vec<Vec<usize>>,
                    highest: &mut usize,
                    in_active: &mut [bool]| {
        if v == s || v == t || in_active[v] {
            return;
        }
        in_active[v] = true;
        match variant {
            PushRelabelVariant::Fifo => fifo.push_back(v),
            PushRelabelVariant::HighestLabel => {
                let l = label[v].min(2 * n);
                buckets[l].push(v);
                if l > *highest {
                    *highest = l;
                }
            }
        }
    };
    for v in (0..n).filter(|&v| excess[v] > 0) {
        activate(
            v,
            &label,
            &mut fifo,
            &mut buckets,
            &mut highest,
            &mut in_active,
        );
    }

    let relabel_interval = (n.max(4)) * 2;
    let mut work_since_relabel = 0usize;

    loop {
        // Select an active vertex.
        let v = match variant {
            PushRelabelVariant::Fifo => match fifo.pop_front() {
                Some(v) => v,
                None => break,
            },
            PushRelabelVariant::HighestLabel => {
                let mut found = None;
                while highest > 0 || !buckets[0].is_empty() {
                    if let Some(v) = buckets[highest].pop() {
                        found = Some(v);
                        break;
                    }
                    if highest == 0 {
                        break;
                    }
                    highest -= 1;
                }
                match found {
                    Some(v) => v,
                    None => break,
                }
            }
        };
        in_active[v] = false;
        if excess[v] <= 0 || v == s || v == t {
            continue;
        }

        // Discharge v.
        let mut discharged = false;
        while excess[v] > 0 {
            if current_arc[v] >= rg.arcs(v).len() {
                // Relabel.
                let old = label[v];
                let mut min_label = usize::MAX;
                for &a in rg.arcs(v) {
                    if rg.residual(a) > 0 {
                        min_label = min_label.min(label[rg.head(a)]);
                    }
                }
                if min_label == usize::MAX {
                    // No residual arcs: dead vertex.
                    break;
                }
                let newl = (min_label + 1).min(2 * n);
                label_count[old] -= 1;
                label[v] = newl;
                label_count[newl] += 1;
                current_arc[v] = 0;
                work_since_relabel += rg.arcs(v).len();

                // Gap heuristic: if old label became empty, lift everything
                // above it out of reach.
                if label_count[old] == 0 && old < n {
                    for u in 0..n {
                        if u != s && label[u] > old && label[u] <= n {
                            label_count[label[u]] -= 1;
                            label[u] = (n + 1).min(2 * n);
                            label_count[label[u]] += 1;
                        }
                    }
                }
                if newl >= 2 * n {
                    break;
                }
                continue;
            }
            let a = rg.arcs(v)[current_arc[v]];
            let u = rg.head(a);
            if rg.residual(a) > 0 && label[v] == label[u] + 1 {
                let amount = excess[v].min(rg.residual(a));
                rg.push(a, amount);
                excess[v] -= amount;
                excess[u] += amount;
                discharged = true;
                if u != s && u != t {
                    activate(
                        u,
                        &label,
                        &mut fifo,
                        &mut buckets,
                        &mut highest,
                        &mut in_active,
                    );
                }
            } else {
                current_arc[v] += 1;
            }
        }
        let _ = discharged;
        if excess[v] > 0 && label[v] < 2 * n {
            activate(
                v,
                &label,
                &mut fifo,
                &mut buckets,
                &mut highest,
                &mut in_active,
            );
        }

        // Periodic global relabel keeps labels sharp on big instances.
        if work_since_relabel > relabel_interval {
            work_since_relabel = 0;
            global_relabel(&rg, &mut label, &mut label_count, &mut current_arc);
        }
    }

    // Phase 2: the preflow maximizes excess[t], but interior vertices may
    // still hold stranded excess (their flow could not reach the sink).
    // Convert the preflow into a genuine flow by walking each unit of
    // stranded excess backwards along incoming-flow arcs to the source,
    // cancelling flow cycles encountered on the way.
    return_stranded_excess(&mut rg, &mut excess);

    FlowResult {
        value: excess[t],
        edge_flows: rg.edge_flows(),
    }
}

/// Converts a maximum preflow into a maximum flow (Goldberg–Tarjan phase 2)
/// by flow decomposition: for every vertex with positive excess, trace
/// incoming-flow arcs back towards the source and cancel flow along the
/// path; flow cycles found during the walk are cancelled outright.
fn return_stranded_excess(rg: &mut ResidualGraph, excess: &mut [i64]) {
    let n = rg.vertex_count();
    let (s, t) = (rg.source(), rg.sink());
    let mut pos = vec![usize::MAX; n];

    for v in 0..n {
        if v == s || v == t {
            continue;
        }
        'drain: while excess[v] > 0 {
            // Walk backwards along arcs that carry flow *into* the current
            // vertex (odd arcs with positive residual are exactly the
            // reverse arcs of flow-carrying original edges).
            pos.iter_mut().for_each(|p| *p = usize::MAX);
            let mut path: Vec<usize> = Vec::new();
            pos[v] = 0;
            let mut cur = v;
            while cur != s {
                let a = rg
                    .arcs(cur)
                    .iter()
                    .copied()
                    .find(|&a| a % 2 == 1 && rg.residual(a) > 0)
                    .expect("invariant: positive excess implies an incoming flow arc");
                let nxt = rg.head(a);
                if pos[nxt] != usize::MAX {
                    // Found a flow cycle nxt → … → cur → nxt: cancel it and
                    // restart the walk (excess is unchanged by the cancel).
                    let start = pos[nxt];
                    let cycle: Vec<usize> = path[start..].iter().copied().chain([a]).collect();
                    let delta = cycle
                        .iter()
                        .map(|&c| rg.residual(c))
                        .min()
                        .expect("invariant: detected flow cycles are nonempty");
                    for &c in &cycle {
                        rg.push(c, delta);
                    }
                    continue 'drain;
                }
                path.push(a);
                pos[nxt] = path.len();
                cur = nxt;
            }
            let delta = path
                .iter()
                .map(|&a| rg.residual(a))
                .min()
                .unwrap_or(0)
                .min(excess[v]);
            debug_assert!(delta > 0, "backward path must carry flow");
            for &a in &path {
                rg.push(a, delta);
            }
            excess[v] -= delta;
            excess[s] += delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edmonds_karp;
    use ohmflow_graph::generators;
    use ohmflow_graph::rmat::RmatConfig;

    #[test]
    fn both_variants_match_oracle_on_examples() {
        for g in [
            generators::fig5a(),
            generators::fig15a(50),
            generators::path(&[4, 4, 1]).unwrap(),
            generators::parallel_paths(3, 7).unwrap(),
            generators::layered(4, 3, 9, 5).unwrap(),
            generators::grid(4, 4, 5, 1).unwrap(),
        ] {
            let oracle = edmonds_karp(&g).value;
            for variant in [PushRelabelVariant::Fifo, PushRelabelVariant::HighestLabel] {
                let r = push_relabel(&g, variant);
                assert_eq!(r.value, oracle, "{variant:?}");
                assert!(r.is_valid_for(&g), "{variant:?}");
            }
        }
    }

    #[test]
    fn matches_oracle_on_rmat_sweep() {
        for seed in 0..12 {
            let g = RmatConfig::sparse(60, seed).generate().unwrap();
            let oracle = edmonds_karp(&g).value;
            for variant in [PushRelabelVariant::Fifo, PushRelabelVariant::HighestLabel] {
                let r = push_relabel(&g, variant);
                assert_eq!(r.value, oracle, "seed {seed} {variant:?}");
                assert!(r.is_valid_for(&g), "seed {seed} {variant:?}");
            }
        }
    }

    #[test]
    fn matches_oracle_on_dense_rmat() {
        for seed in 0..4 {
            let g = RmatConfig::dense(48, seed).generate().unwrap();
            let oracle = edmonds_karp(&g).value;
            assert_eq!(push_relabel(&g, PushRelabelVariant::Fifo).value, oracle);
            assert_eq!(
                push_relabel(&g, PushRelabelVariant::HighestLabel).value,
                oracle
            );
        }
    }

    #[test]
    fn zero_flow_when_unreachable() {
        let mut g = FlowNetwork::new(4, 0, 3).unwrap();
        g.add_edge(0, 1, 5).unwrap();
        g.add_edge(2, 3, 5).unwrap();
        assert_eq!(push_relabel(&g, PushRelabelVariant::Fifo).value, 0);
    }
}
