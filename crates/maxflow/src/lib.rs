//! Classical maximum-flow algorithms: the CPU baselines the paper compares
//! against (§5.1 uses push-relabel) and the exact oracle the analog
//! substrate's solutions are validated against.
//!
//! Implemented solvers:
//!
//! * [`edmonds_karp`] — BFS augmenting paths, `O(V E²)`,
//! * [`dinic`] — blocking flows on level graphs, `O(V² E)`,
//! * [`push_relabel`] — Goldberg–Tarjan preflow-push with FIFO or
//!   highest-label selection, gap heuristic and periodic global relabeling
//!   (the paper's baseline),
//! * [`min_cut`] — minimum `s–t` cut extracted from a max-flow residual
//!   graph (the dual certificate used by the §6.3 study).
//!
//! All solvers share the [`FlowResult`] output: the optimal value plus a
//! per-edge integral flow assignment that always satisfies the capacity and
//! conservation constraints exactly.
//!
//! # Example
//!
//! ```
//! use ohmflow_graph::generators::fig5a;
//! use ohmflow_maxflow::{dinic, edmonds_karp, push_relabel, PushRelabelVariant};
//!
//! let g = fig5a();
//! assert_eq!(edmonds_karp(&g).value, 2);
//! assert_eq!(dinic(&g).value, 2);
//! assert_eq!(push_relabel(&g, PushRelabelVariant::Fifo).value, 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dinic_impl;
mod ek;
mod mincut;
mod pr;
mod residual;

pub use dinic_impl::dinic;
pub use ek::edmonds_karp;
pub use mincut::{min_cut, MinCut};
pub use pr::{push_relabel, PushRelabelVariant};
pub use residual::ResidualGraph;

use ohmflow_graph::FlowNetwork;

/// Result of a max-flow computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowResult {
    /// Optimal flow value `|f|`.
    pub value: i64,
    /// Flow on each edge, indexed by [`ohmflow_graph::EdgeId`] order.
    pub edge_flows: Vec<i64>,
}

impl FlowResult {
    /// Verifies the stored assignment against `g` (capacity + conservation
    /// + value consistency). Intended for tests and debugging.
    pub fn is_valid_for(&self, g: &FlowNetwork) -> bool {
        let flows: Vec<f64> = self.edge_flows.iter().map(|&f| f as f64).collect();
        match g.validate_flow(&flows, 1e-9) {
            Some(v) => (v - self.value as f64).abs() < 1e-9,
            None => false,
        }
    }
}
