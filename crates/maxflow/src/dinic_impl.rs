use std::collections::VecDeque;

use ohmflow_graph::FlowNetwork;

use crate::residual::ResidualGraph;
use crate::FlowResult;

/// Dinitz's blocking-flow algorithm, `O(V² E)` (cited as ref.\ 12 in the
/// paper's related-work discussion of efficient classical algorithms).
///
/// # Example
///
/// ```
/// let g = ohmflow_graph::generators::fig5a();
/// assert_eq!(ohmflow_maxflow::dinic(&g).value, 2);
/// ```
pub fn dinic(g: &FlowNetwork) -> FlowResult {
    let mut rg = ResidualGraph::new(g);
    let (s, t) = (rg.source(), rg.sink());
    let n = rg.vertex_count();
    let mut value: i64 = 0;
    let mut level = vec![-1i32; n];
    let mut it = vec![0usize; n];

    loop {
        // Build the level graph by BFS.
        level.fill(-1);
        level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &a in rg.arcs(v) {
                let u = rg.head(a);
                if rg.residual(a) > 0 && level[u] < 0 {
                    level[u] = level[v] + 1;
                    q.push_back(u);
                }
            }
        }
        if level[t] < 0 {
            break;
        }
        // Find a blocking flow with iterative DFS.
        it.fill(0);
        loop {
            let pushed = dfs_push(&mut rg, s, t, i64::MAX, &level, &mut it);
            if pushed == 0 {
                break;
            }
            value += pushed;
        }
    }

    FlowResult {
        value,
        edge_flows: rg.edge_flows(),
    }
}

/// DFS that pushes up to `limit` along level-increasing residual arcs.
fn dfs_push(
    rg: &mut ResidualGraph,
    v: usize,
    t: usize,
    limit: i64,
    level: &[i32],
    it: &mut [usize],
) -> i64 {
    if v == t {
        return limit;
    }
    while it[v] < rg.arcs(v).len() {
        let a = rg.arcs(v)[it[v]];
        let u = rg.head(a);
        if rg.residual(a) > 0 && level[u] == level[v] + 1 {
            let pushed = dfs_push(rg, u, t, limit.min(rg.residual(a)), level, it);
            if pushed > 0 {
                rg.push(a, pushed);
                return pushed;
            }
        }
        it[v] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edmonds_karp;
    use ohmflow_graph::generators;
    use ohmflow_graph::rmat::RmatConfig;

    #[test]
    fn matches_edmonds_karp_on_examples() {
        for g in [
            generators::fig5a(),
            generators::fig15a(100),
            generators::path(&[3, 1, 7]).unwrap(),
            generators::parallel_paths(5, 2).unwrap(),
            generators::layered(3, 3, 5, 2).unwrap(),
        ] {
            let d = dinic(&g);
            assert_eq!(d.value, edmonds_karp(&g).value);
            assert!(d.is_valid_for(&g));
        }
    }

    #[test]
    fn matches_edmonds_karp_on_rmat() {
        for seed in 0..8 {
            let g = RmatConfig::sparse(50, seed).generate().unwrap();
            let d = dinic(&g);
            let e = edmonds_karp(&g);
            assert_eq!(d.value, e.value, "seed {seed}");
            assert!(d.is_valid_for(&g));
        }
    }

    #[test]
    fn bipartite_matching_value() {
        // Perfect matching possible on a crown graph shape.
        let g = generators::bipartite(6, 6, 3, 4).unwrap();
        let d = dinic(&g);
        assert!(d.value <= 6);
        assert_eq!(d.value, edmonds_karp(&g).value);
    }
}
