use ohmflow_graph::{EdgeId, FlowNetwork};

use crate::residual::ResidualGraph;
use crate::{dinic, FlowResult};

/// A minimum `s–t` cut: the dual certificate of a maximum flow
/// (max-flow/min-cut theorem), used to validate the §6.3 dual-circuit study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCut {
    /// Total capacity of the cut — equal to the max-flow value.
    pub capacity: i64,
    /// `true` for vertices on the source side.
    pub source_side: Vec<bool>,
    /// Edges crossing from the source side to the sink side.
    pub cut_edges: Vec<EdgeId>,
}

/// Computes a minimum `s–t` cut of `g` by running [`dinic`] and extracting
/// the residual reachability certificate.
///
/// # Example
///
/// ```
/// let g = ohmflow_graph::generators::fig5a();
/// let cut = ohmflow_maxflow::min_cut(&g);
/// assert_eq!(cut.capacity, 2); // equals the max-flow value
/// ```
pub fn min_cut(g: &FlowNetwork) -> MinCut {
    let flow: FlowResult = dinic(g);
    // Rebuild the residual at optimality to get reachability.
    let mut rg = ResidualGraph::new(g);
    for (k, &f) in flow.edge_flows.iter().enumerate() {
        if f > 0 {
            rg.push(2 * k, f);
        }
    }
    let source_side = rg.source_side();
    let mut cut_edges = Vec::new();
    let mut capacity = 0i64;
    for (k, e) in g.edges().iter().enumerate() {
        if source_side[e.from] && !source_side[e.to] {
            cut_edges.push(EdgeId(k));
            capacity += e.capacity;
        }
    }
    debug_assert_eq!(capacity, flow.value, "max-flow/min-cut duality");
    MinCut {
        capacity,
        source_side,
        cut_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edmonds_karp;
    use ohmflow_graph::generators;
    use ohmflow_graph::rmat::RmatConfig;

    #[test]
    fn cut_equals_flow_on_examples() {
        for g in [
            generators::fig5a(),
            generators::fig15a(33),
            generators::path(&[2, 8]).unwrap(),
            generators::grid(3, 3, 4, 7).unwrap(),
        ] {
            let cut = min_cut(&g);
            assert_eq!(cut.capacity, edmonds_karp(&g).value);
            assert!(cut.source_side[g.source()]);
            assert!(!cut.source_side[g.sink()]);
        }
    }

    #[test]
    fn cut_edges_capacity_sums_to_value() {
        let g = RmatConfig::sparse(40, 2).generate().unwrap();
        let cut = min_cut(&g);
        let sum: i64 = cut.cut_edges.iter().map(|&e| g.edge(e).capacity).sum();
        assert_eq!(sum, cut.capacity);
    }

    #[test]
    fn path_cut_is_bottleneck_edge() {
        let g = generators::path(&[9, 1, 9]).unwrap();
        let cut = min_cut(&g);
        assert_eq!(cut.capacity, 1);
        assert_eq!(cut.cut_edges.len(), 1);
        assert_eq!(g.edge(cut.cut_edges[0]).capacity, 1);
    }

    #[test]
    fn duality_holds_across_rmat_sweep() {
        for seed in 0..10 {
            let g = RmatConfig::sparse(48, 100 + seed).generate().unwrap();
            let cut = min_cut(&g);
            assert_eq!(cut.capacity, edmonds_karp(&g).value, "seed {seed}");
        }
    }
}
