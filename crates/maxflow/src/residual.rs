use ohmflow_graph::FlowNetwork;

/// Residual-graph representation shared by every max-flow algorithm.
///
/// Each original edge is stored as an arc/reverse-arc pair; arc `2k`
/// corresponds to original edge `k` and arc `2k + 1` is its residual
/// reverse. The flow on original edge `k` is the residual capacity of the
/// reverse arc.
#[derive(Debug, Clone)]
pub struct ResidualGraph {
    n: usize,
    source: usize,
    sink: usize,
    /// Head vertex of each arc.
    head: Vec<usize>,
    /// Residual capacity of each arc.
    cap: Vec<i64>,
    /// Adjacency: arcs leaving each vertex.
    adj: Vec<Vec<usize>>,
}

impl ResidualGraph {
    /// Builds the residual graph of `g` with zero initial flow.
    pub fn new(g: &FlowNetwork) -> Self {
        let n = g.vertex_count();
        let mut rg = ResidualGraph {
            n,
            source: g.source(),
            sink: g.sink(),
            head: Vec::with_capacity(2 * g.edge_count()),
            cap: Vec::with_capacity(2 * g.edge_count()),
            adj: vec![Vec::new(); n],
        };
        for e in g.edges() {
            let a = rg.head.len();
            rg.head.push(e.to);
            rg.cap.push(e.capacity);
            rg.adj[e.from].push(a);
            rg.head.push(e.from);
            rg.cap.push(0);
            rg.adj[e.to].push(a + 1);
        }
        rg
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Source vertex.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Sink vertex.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Number of arcs (2 × original edges).
    pub fn arc_count(&self) -> usize {
        self.head.len()
    }

    /// Head of arc `a`.
    #[inline]
    pub fn head(&self, a: usize) -> usize {
        self.head[a]
    }

    /// Residual capacity of arc `a`.
    #[inline]
    pub fn residual(&self, a: usize) -> i64 {
        self.cap[a]
    }

    /// The reverse arc of `a`.
    #[inline]
    pub fn reverse(a: usize) -> usize {
        a ^ 1
    }

    /// Arcs leaving `v`.
    #[inline]
    pub fn arcs(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Pushes `amount` along arc `a` (decreasing its residual, increasing
    /// the reverse residual).
    ///
    /// # Panics
    ///
    /// Debug-panics if `amount` exceeds the residual capacity.
    #[inline]
    pub fn push(&mut self, a: usize, amount: i64) {
        debug_assert!(amount <= self.cap[a], "push exceeds residual");
        self.cap[a] -= amount;
        self.cap[a ^ 1] += amount;
    }

    /// Flow currently assigned to original edge `k` (the reverse arc's
    /// residual).
    #[inline]
    pub fn edge_flow(&self, k: usize) -> i64 {
        self.cap[2 * k + 1]
    }

    /// Extracts the per-edge flow vector.
    pub fn edge_flows(&self) -> Vec<i64> {
        (0..self.head.len() / 2)
            .map(|k| self.edge_flow(k))
            .collect()
    }

    /// Vertices reachable from the source in the residual graph — the
    /// source side of a minimum cut once a max flow has been computed.
    pub fn source_side(&self) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![self.source];
        seen[self.source] = true;
        while let Some(v) = stack.pop() {
            for &a in &self.adj[v] {
                let u = self.head[a];
                if self.cap[a] > 0 && !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohmflow_graph::generators::fig5a;

    #[test]
    fn construction_pairs_arcs() {
        let rg = ResidualGraph::new(&fig5a());
        assert_eq!(rg.arc_count(), 10);
        assert_eq!(rg.residual(0), 3); // s→n1 cap 3
        assert_eq!(rg.residual(1), 0); // reverse starts empty
        assert_eq!(ResidualGraph::reverse(4), 5);
        assert_eq!(ResidualGraph::reverse(5), 4);
    }

    #[test]
    fn push_moves_capacity() {
        let mut rg = ResidualGraph::new(&fig5a());
        rg.push(0, 2);
        assert_eq!(rg.residual(0), 1);
        assert_eq!(rg.residual(1), 2);
        assert_eq!(rg.edge_flow(0), 2);
        assert_eq!(rg.edge_flows()[0], 2);
    }

    #[test]
    fn source_side_with_zero_flow_reaches_everything() {
        let rg = ResidualGraph::new(&fig5a());
        assert!(rg.source_side().iter().all(|&r| r));
    }
}
