//! `cargo xtask` — repository automation tasks.
//!
//! The only task today is `lint`: a dependency-free, line-level source
//! scanner enforcing the discipline rules the workspace adopted alongside
//! the structural auditors:
//!
//! - **undocumented-unsafe** — every `unsafe` keyword in library code
//!   must be preceded by a `// SAFETY:` (or `/// # Safety`) comment
//!   within the few lines above it.
//! - **unwrap** — no `.unwrap()` in non-test library code, and
//!   `.expect(...)` only with a message that names the invariant it
//!   relies on (prefix `invariant:`). Panicking is how a *violated*
//!   invariant should surface — via the auditors — not how ordinary
//!   error paths are written.
//! - **instant-now** — no `Instant::now` outside the bench and apps
//!   crates; timing belongs to drivers, not the solver stack.
//! - **float-eq** — no `==`/`!=` against float literals outside the
//!   numeric kernels that legitimately test exact zeros.
//!
//! Findings can be suppressed per (rule, file) via the checked-in
//! allowlist `xtask/lint.allow`. The scanner exits non-zero on any
//! unsuppressed finding, so CI fails until the code is fixed or the
//! exemption is deliberately recorded in review.
//!
//! Test code (`#[cfg(test)]` items) is exempt from `unwrap`,
//! `instant-now` and `float-eq` — tests are free to panic and compare —
//! but **not** from `undocumented-unsafe`.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How many lines above an `unsafe` token we search for a SAFETY comment.
const SAFETY_LOOKBACK: usize = 12;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// One lint hit: rule name, file, 1-based line, and the offending text.
struct Finding {
    rule: &'static str,
    file: String,
    line: usize,
    text: String,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow = match load_allowlist(&root.join("xtask/lint.allow")) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("xtask lint: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(path) else {
            eprintln!("xtask lint: unreadable file {rel}");
            return ExitCode::FAILURE;
        };
        scan_file(&rel, &src, &mut findings);
    }

    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    let mut shown = 0usize;
    for f in &findings {
        let key = (f.rule.to_string(), f.file.clone());
        if allow.contains(&key) {
            used.insert(key);
        } else {
            eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.text.trim());
            shown += 1;
        }
    }
    for entry in allow.difference(&used) {
        eprintln!(
            "note: stale allowlist entry `{} {}` (no findings there — consider removing it)",
            entry.0, entry.1
        );
    }

    if shown == 0 {
        println!(
            "xtask lint: clean ({} files scanned, {} allowlisted finding(s))",
            files.len(),
            findings.len() - shown
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {shown} finding(s)");
        ExitCode::FAILURE
    }
}

/// Locates the workspace root: the directory holding the top-level
/// `Cargo.toml` with a `[workspace]` table, starting from CWD (cargo
/// runs xtask from the workspace root, but be robust to subdirs).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("invariant: process has a working directory");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("invariant: process has a working directory");
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Parses `xtask/lint.allow`: one `rule path` pair per line, `#` comments.
fn load_allowlist(path: &Path) -> Result<BTreeSet<(String, String)>, String> {
    const RULES: [&str; 4] = ["undocumented-unsafe", "unwrap", "instant-now", "float-eq"];
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
    let mut set = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(file), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("lint.allow:{}: expected `rule path`", i + 1));
        };
        if !RULES.contains(&rule) {
            return Err(format!(
                "lint.allow:{}: unknown rule `{rule}` (known: {})",
                i + 1,
                RULES.join(", ")
            ));
        }
        set.insert((rule.to_string(), file.to_string()));
    }
    Ok(set)
}

/// Strips a trailing `//` comment, leaving string literals intact in the
/// common case (a `//` inside a string is rare enough to accept).
fn code_part(line: &str) -> &str {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") {
        return "";
    }
    match line.find("//") {
        Some(idx) if !line[..idx].contains('"') => &line[..idx],
        _ => line,
    }
}

/// Marks, per line, whether it sits inside a `#[cfg(test)]` item (the
/// attribute line itself included) by brace-matching the following item.
fn test_region_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim();
        if t == "#[cfg(test)]" || t.starts_with("#[cfg(test)]") {
            mask[i] = true;
            // Skip forward to the item's first `{`, then brace-match.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i + 1;
            while j < lines.len() {
                mask[j] = true;
                let code = code_part(lines[j]);
                for ch in code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                // Attribute-only items (e.g. `#[cfg(test)] use ...;`) end
                // at the first `;` before any brace opens.
                if !opened && code.contains(';') {
                    break;
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// True when `line[idx..]` starts a standalone `unsafe` keyword.
fn is_unsafe_keyword(line: &str, idx: usize) -> bool {
    let before_ok = idx == 0
        || !line[..idx]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = &line[idx + "unsafe".len()..];
    let after_ok = !after
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// True when a `==`/`!=` at byte `idx` compares against a float literal
/// on either side (e.g. `x == 0.0`, `1.5 != y`).
fn float_cmp_at(code: &str, idx: usize) -> bool {
    let rhs = code[idx + 2..].trim_start();
    if starts_with_float_literal(rhs) {
        return true;
    }
    let lhs = code[..idx].trim_end();
    ends_with_float_literal(lhs)
}

fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let digits = s.chars().take_while(|c| c.is_ascii_digit()).count();
    digits > 0 && s[digits..].starts_with('.')
}

fn ends_with_float_literal(s: &str) -> bool {
    // Accept `1.0`, `0.`, and suffixed forms like `1.0f64`.
    let s = s
        .strip_suffix("f64")
        .or_else(|| s.strip_suffix("f32"))
        .unwrap_or(s);
    let taken = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .count();
    let trailing = &s[s.len() - taken..];
    if !trailing.contains('.') || !trailing.chars().any(|c| c.is_ascii_digit()) {
        return false;
    }
    // `self.0`, `pair.1`, `w[0].0`: tuple-field access, not a literal.
    !s[..s.len() - taken]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ')' || c == ']')
}

fn scan_file(rel: &str, src: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = src.lines().collect();
    if rel.starts_with("vendor/") {
        return;
    }
    // Integration tests and criterion benches are test code wholesale.
    let all_test = rel.contains("/tests/") || rel.contains("/benches/");
    let in_test = test_region_mask(&lines);
    let timing_crate = rel.starts_with("crates/bench/") || rel.starts_with("crates/apps/");

    for (i, raw) in lines.iter().enumerate() {
        let code = code_part(raw);
        if code.trim().is_empty() {
            continue;
        }

        // undocumented-unsafe: applies everywhere, tests included.
        if let Some(idx) = code.find("unsafe") {
            let is_attr =
                code.trim_start().starts_with("#!") || code.trim_start().starts_with("#[");
            if !is_attr && is_unsafe_keyword(code, idx) && !has_safety_comment(&lines, i) {
                findings.push(Finding {
                    rule: "undocumented-unsafe",
                    file: rel.to_string(),
                    line: i + 1,
                    text: raw.to_string(),
                });
            }
        }

        if all_test || in_test[i] {
            continue;
        }

        // unwrap / undocumented expect.
        if code.contains(".unwrap()") {
            findings.push(Finding {
                rule: "unwrap",
                file: rel.to_string(),
                line: i + 1,
                text: raw.to_string(),
            });
        }
        if let Some(idx) = code.find(".expect(") {
            let arg = &code[idx + ".expect(".len()..];
            let documented = arg.starts_with("\"invariant:")
                || (arg.trim().is_empty()
                    && lines
                        .get(i + 1)
                        .is_some_and(|n| n.trim().starts_with("\"invariant:")));
            if !documented {
                findings.push(Finding {
                    rule: "unwrap",
                    file: rel.to_string(),
                    line: i + 1,
                    text: raw.to_string(),
                });
            }
        }

        // instant-now: timing belongs to bench/apps drivers.
        if !timing_crate && code.contains("Instant::now") {
            findings.push(Finding {
                rule: "instant-now",
                file: rel.to_string(),
                line: i + 1,
                text: raw.to_string(),
            });
        }

        // float-eq: exact comparison against a float literal.
        let bytes = code.as_bytes();
        for idx in 0..bytes.len().saturating_sub(1) {
            if (bytes[idx] == b'=' || bytes[idx] == b'!')
                && bytes[idx + 1] == b'='
                && bytes.get(idx + 2) != Some(&b'=')
                && (idx == 0
                    || bytes[idx - 1] != b'='
                        && bytes[idx - 1] != b'!'
                        && bytes[idx - 1] != b'<'
                        && bytes[idx - 1] != b'>')
                && float_cmp_at(code, idx)
            {
                findings.push(Finding {
                    rule: "float-eq",
                    file: rel.to_string(),
                    line: i + 1,
                    text: raw.to_string(),
                });
                break;
            }
        }
    }
}

/// Looks upward from line `i` for a SAFETY marker: either a `// SAFETY:`
/// comment or a `# Safety` doc-section within the lookback window,
/// stopping at the first blank line beyond an attribute/comment run.
fn has_safety_comment(lines: &[&str], i: usize) -> bool {
    // Same-line trailing comment counts.
    if lines[i].contains("SAFETY:") {
        return true;
    }
    for back in 1..=SAFETY_LOOKBACK {
        let Some(j) = i.checked_sub(back) else { break };
        let t = lines[j].trim();
        if t.contains("SAFETY:") || t.contains("# Safety") {
            return true;
        }
        // Keep scanning through comments, attributes and signature
        // continuation lines; a blank line ends the item's preamble.
        if t.is_empty() {
            break;
        }
    }
    false
}
