//! Solve a DIMACS max-flow instance on the analog substrate.
//!
//! Run with: `cargo run --example dimacs_solver -- path/to/instance.dimacs`
//! (without an argument, a small built-in instance is solved).

use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::dimacs;
use ohmflow_maxflow::{push_relabel, PushRelabelVariant};

const BUILTIN: &str = "\
c built-in demo instance
p max 6 8
n 1 s
n 6 t
a 1 2 10
a 1 3 8
a 2 4 5
a 2 3 2
a 3 5 10
a 4 6 7
a 5 4 6
a 5 6 10
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_owned(),
    };
    let g = dimacs::parse(&text)?;
    println!(
        "instance: {} vertices, {} edges, s = {}, t = {}",
        g.vertex_count(),
        g.edge_count(),
        g.source(),
        g.sink()
    );
    let exact = push_relabel(&g, PushRelabelVariant::HighestLabel);
    println!("exact max flow (push-relabel): {}", exact.value);

    let mut cfg = SolveOptions::ideal();
    // Scale the drive with the instance size (§2.3 monotone saturation).
    cfg.params.v_flow = 50.0 * (g.vertex_count() as f64).sqrt().max(1.0);
    let sol = MaxFlowSolver::new(cfg).solve(&g)?;
    println!("analog substrate max flow    : {:.3}", sol.value);
    println!(
        "substrate size: {} nodes, {} elements ({} diodes, {} negative resistors)",
        sol.stats.nodes, sol.stats.elements, sol.stats.diodes, sol.stats.negative_resistors
    );
    Ok(())
}
