//! Reproduces the Fig. 5c experiment: step V_flow and watch the edge-node
//! voltages converge — V(x1) overshoots toward 3 V, the capacity clamps
//! engage, and the conservation network settles everything at the optimum.
//!
//! Run with: `cargo run --example transient_waveform`

use ohmflow::builder::CapacityMapping;
use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::generators::fig5a;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = fig5a();
    let mut cfg = SolveOptions::evaluation(10e9);
    cfg.build.capacity_mapping = CapacityMapping::Exact; // volts = flows / 3
    let sol = MaxFlowSolver::new(cfg).solve(&g)?;
    let waves = sol.waveforms.as_ref().expect("transient records waveforms");

    println!("convergence time: {:.3e} s", sol.convergence_time.unwrap());
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "t (s)", "x1", "x2", "x3", "x4", "x5"
    );
    let times = waves.times();
    let n = times.len();
    let nodes: Vec<_> = waves.probed_nodes().collect();
    let mut sorted = nodes;
    sorted.sort_by_key(|n| n.index());
    for i in (0..n).step_by((n / 24).max(1)) {
        print!("{:>12.3e}", times[i]);
        for node in sorted.iter().take(5) {
            let v = waves.voltage(*node).expect("probed").values()[i];
            print!(" {:>8.3}", v * 3.0); // flow units
        }
        println!();
    }
    println!("final flows: {:?}", sol.edge_flows);
    Ok(())
}
