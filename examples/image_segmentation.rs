//! A computer-vision style workload (the paper's intro motivation, Boykov &
//! Kolmogorov): min-cut segmentation of a pixel grid, solved on the analog
//! substrate, with the cut extracted from the analog flows.
//!
//! Run with: `cargo run --example image_segmentation`

use ohmflow::mincut::cut_from_analog;
use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::generators::grid;
use ohmflow_maxflow::min_cut;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6x8 "image": super-source seeds the left column, super-sink the right.
    let g = grid(6, 8, 9, 42)?;
    println!(
        "grid segmentation instance: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    );

    let exact = min_cut(&g);
    println!("exact min-cut capacity: {}", exact.capacity);

    let mut cfg = SolveOptions::ideal();
    cfg.params.v_flow = 400.0; // drive headroom for the larger instance
    let sol = MaxFlowSolver::new(cfg).solve(&g)?;
    println!("analog max-flow value : {:.2}", sol.value);

    let cut = cut_from_analog(&g, &sol.edge_flows, 0.25);
    println!("analog-extracted cut  : {}", cut.capacity);
    println!(
        "segmentation (source side pixels): {}",
        cut.source_side.iter().filter(|&&s| s).count()
    );

    // Render the segmentation.
    for r in 0..6 {
        let row: String = (0..8)
            .map(|c| if cut.source_side[r * 8 + c] { '#' } else { '.' })
            .collect();
        println!("  {row}");
    }
    Ok(())
}
