//! The reconfigurability story of §3: one crossbar substrate, many
//! max-flow instances — program, solve, reprogram — with the §5.2 power
//! model tracking the energy per solve.
//!
//! Run with: `cargo run --example reconfigurable_batch`

use ohmflow::crossbar::Crossbar;
use ohmflow::power::PowerModel;
use ohmflow::solver::{AnalogConfig, AnalogMaxFlow};
use ohmflow::SubstrateParams;
use ohmflow_graph::rmat::RmatConfig;
use ohmflow_maxflow::edmonds_karp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SubstrateParams::table1();
    let mut xbar = Crossbar::new(&params, 64)?;
    let power = PowerModel::paper();
    let mut cfg = AnalogConfig::ideal();
    cfg.params.v_flow = 400.0;
    let solver = AnalogMaxFlow::new(cfg);

    println!("one 64x64 crossbar, three workloads:");
    for seed in 0..3u64 {
        let g = RmatConfig::sparse(48, seed).generate()?;
        let report = xbar.program(&g)?;
        assert!(xbar.encodes(&g));
        let sol = solver.solve(&g)?;
        let exact = edmonds_karp(&g).value;
        println!(
            "  workload {seed}: programmed in {} cycles ({} SET pulses), \
             |f| = {:.1} (exact {}), substrate power {:.1} mW, \
             crossbar utilization {:.1}%",
            report.cycles,
            report.set_pulses,
            sol.value,
            exact,
            power.power_for(&g) * 1e3,
            xbar.utilization() * 100.0
        );
    }
    Ok(())
}
