//! The reconfigurability story of §3: one crossbar substrate, many
//! max-flow instances — program, solve, reprogram — with the §5.2 power
//! model tracking the energy per solve.
//!
//! The software mirror of "one fabric, many programmed instances" is the
//! staged API: one [`MaxFlowSolver`] whose plan cache amortizes every
//! topology's cold path, and `solve_many` fanning a whole workload batch
//! across cores with automatic same-topology grouping.
//!
//! Run with: `cargo run --example reconfigurable_batch`

use ohmflow::crossbar::Crossbar;
use ohmflow::power::PowerModel;
use ohmflow::SubstrateParams;
use ohmflow::{MaxFlowSolver, Problem, SolveOptions};
use ohmflow_graph::rmat::RmatConfig;
use ohmflow_maxflow::edmonds_karp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SubstrateParams::table1();
    let mut xbar = Crossbar::new(&params, 64)?;
    let power = PowerModel::paper();
    let mut opts = SolveOptions::ideal();
    opts.params.v_flow = 400.0;
    let solver = MaxFlowSolver::new(opts);

    // Three workloads programmed onto one crossbar, solved one by one.
    println!("one 64x64 crossbar, three workloads:");
    let mut graphs = Vec::new();
    for seed in 0..3u64 {
        let g = RmatConfig::sparse(48, seed).generate()?;
        let report = xbar.program(&g)?;
        assert!(xbar.encodes(&g));
        let sol = solver.solve(&g)?;
        let exact = edmonds_karp(&g).value;
        println!(
            "  workload {seed}: programmed in {} cycles ({} SET pulses), \
             |f| = {:.1} (exact {}), substrate power {:.1} mW, \
             crossbar utilization {:.1}%",
            report.cycles,
            report.set_pulses,
            sol.value,
            exact,
            power.power_for(&g) * 1e3,
            xbar.utilization() * 100.0
        );
        graphs.push(g);
    }

    // The same workloads as one batch: `solve_many` groups same-topology
    // members onto shared plans and fans out across all cores.
    let batch = solver.solve_many(graphs.iter().map(Problem::from));
    let total: f64 = batch
        .into_iter()
        .map(|r| r.map(|s| s.value))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .sum();
    println!("batch re-solve of all workloads: total |f| = {total:.1}");
    Ok(())
}
