//! Quickstart: solve the paper's Fig. 5a example on the analog substrate
//! through the staged `Problem → Plan → Instance → Session` API and
//! compare against the exact push-relabel baseline.
//!
//! Run with: `cargo run --example quickstart`

use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::generators::fig5a;
use ohmflow_maxflow::{push_relabel, PushRelabelVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = fig5a();
    println!(
        "Fig. 5a instance: {} vertices, {} edges, capacities up to {}",
        g.vertex_count(),
        g.edge_count(),
        g.max_capacity()
    );

    // Exact CPU baseline (the paper's §5.1 comparator).
    let exact = push_relabel(&g, PushRelabelVariant::HighestLabel);
    println!("push-relabel max flow      : {}", exact.value);

    // Ideal analog substrate, staged: `plan` runs the topology-dependent
    // cold path (substrate build, MNA structure, AMD+BTF ordering,
    // symbolic LU) once; `instance` stamps the capacity values; `solve`
    // reads the steady state — whose node voltages ARE the solution.
    let solver = MaxFlowSolver::new(SolveOptions::ideal());
    let plan = solver.plan(&g)?;
    let report = plan.report();
    println!(
        "plan: nnz(L+U) {} in {} BTF blocks ({:?} ordering, cache hit: {})",
        report.factor_nnz, report.block_count, report.ordering, report.cache_hit
    );
    let sol = plan.instance(&g)?.solve()?;
    println!("analog substrate max flow  : {:.4}", sol.value);
    println!("Eq. (7a) current readout   : {:.4}", sol.value_from_current);
    println!("per-edge flows (x1..x5)    : {:?}", sol.edge_flows);

    // Re-instantiating the *same plan* with scaled capacities is value-only
    // work — no new ordering, no new symbolic analysis.
    let g2 = g.scaled_capacities(2)?;
    let sol2 = plan.instance(&g2)?.solve()?;
    println!("2x capacities, same plan   : {:.4}", sol2.value);

    // §5.1 evaluation mode: quantized capacities, GBW-limited transient.
    // `solve` is the one-call convenience over the same stages.
    let eval = MaxFlowSolver::new(SolveOptions::evaluation(10e9));
    let tsol = eval.solve(&g)?;
    println!(
        "evaluation mode (N=20, 10 GHz GBW): value {:.4}, converged in {:.3e} s \
         ({} frozen-DC solves)",
        tsol.value,
        tsol.convergence_time.unwrap_or(f64::NAN),
        tsol.report.iterations
    );
    Ok(())
}
