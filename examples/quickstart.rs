//! Quickstart: solve the paper's Fig. 5a example on the analog substrate
//! and compare against the exact push-relabel baseline.
//!
//! Run with: `cargo run --example quickstart`

use ohmflow::solver::{AnalogConfig, AnalogMaxFlow};
use ohmflow_graph::generators::fig5a;
use ohmflow_maxflow::{push_relabel, PushRelabelVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = fig5a();
    println!(
        "Fig. 5a instance: {} vertices, {} edges, capacities up to {}",
        g.vertex_count(),
        g.edge_count(),
        g.max_capacity()
    );

    // Exact CPU baseline (the paper's §5.1 comparator).
    let exact = push_relabel(&g, PushRelabelVariant::HighestLabel);
    println!("push-relabel max flow      : {}", exact.value);

    // Ideal analog substrate: steady-state node voltages ARE the solution.
    let solver = AnalogMaxFlow::new(AnalogConfig::ideal());
    let sol = solver.solve(&g)?;
    println!("analog substrate max flow  : {:.4}", sol.value);
    println!("Eq. (7a) current readout   : {:.4}", sol.value_from_current);
    println!("per-edge flows (x1..x5)    : {:?}", sol.edge_flows);

    // §5.1 evaluation mode: quantized capacities, GBW-limited transient.
    let eval = AnalogMaxFlow::new(AnalogConfig::evaluation(10e9));
    let tsol = eval.solve(&g)?;
    println!(
        "evaluation mode (N=20, 10 GHz GBW): value {:.4}, converged in {:.3e} s",
        tsol.value,
        tsol.convergence_time.unwrap_or(f64::NAN)
    );
    Ok(())
}
